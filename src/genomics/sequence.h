/**
 * @file
 * DNA sequence representation and helpers.
 *
 * Bases are encoded 0..3 = A, C, G, T throughout the genomics substrate;
 * the CTC label alphabet shifts these by +1 (0 is the CTC blank).
 */

#ifndef SWORDFISH_GENOMICS_SEQUENCE_H
#define SWORDFISH_GENOMICS_SEQUENCE_H

#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.h"

namespace swordfish::genomics {

/** A DNA sequence as packed base codes (0..3). */
using Sequence = std::vector<std::uint8_t>;

/** Base code to character. */
inline char
baseToChar(std::uint8_t b)
{
    constexpr char kBases[] = {'A', 'C', 'G', 'T'};
    return b < 4 ? kBases[b] : 'N';
}

/**
 * Character to base code without aborting: returns false (and leaves
 * `base` untouched) on non-ACGT input — the building block of the typed
 * parser error paths.
 */
inline bool
tryCharToBase(char c, std::uint8_t& base)
{
    switch (c) {
      case 'A': case 'a': base = 0; return true;
      case 'C': case 'c': base = 1; return true;
      case 'G': case 'g': base = 2; return true;
      case 'T': case 't': base = 3; return true;
      default: return false;
    }
}

/** Character to base code; fatal on non-ACGT input. */
inline std::uint8_t
charToBase(char c)
{
    std::uint8_t base = 0;
    if (!tryCharToBase(c, base))
        fatal("charToBase: invalid base character '", c, "'");
    return base;
}

/** Render a Sequence as an ACGT string. */
inline std::string
toString(const Sequence& seq)
{
    std::string s;
    s.reserve(seq.size());
    for (std::uint8_t b : seq)
        s.push_back(baseToChar(b));
    return s;
}

/** Parse an ACGT string into a Sequence. */
inline Sequence
fromString(const std::string& s)
{
    Sequence seq;
    seq.reserve(s.size());
    for (char c : s)
        seq.push_back(charToBase(c));
    return seq;
}

/** Reverse complement. */
inline Sequence
reverseComplement(const Sequence& seq)
{
    Sequence rc;
    rc.reserve(seq.size());
    for (auto it = seq.rbegin(); it != seq.rend(); ++it)
        rc.push_back(static_cast<std::uint8_t>(3 - *it));
    return rc;
}

/** GC fraction of a sequence (0 for empty input). */
inline double
gcContent(const Sequence& seq)
{
    if (seq.empty())
        return 0.0;
    std::size_t gc = 0;
    for (std::uint8_t b : seq)
        gc += (b == 1 || b == 2) ? 1 : 0;
    return static_cast<double>(gc) / static_cast<double>(seq.size());
}

/** Convert base codes to CTC labels (base + 1; 0 stays the blank). */
inline std::vector<int>
toCtcLabels(const Sequence& seq)
{
    std::vector<int> labels;
    labels.reserve(seq.size());
    for (std::uint8_t b : seq)
        labels.push_back(static_cast<int>(b) + 1);
    return labels;
}

/** Convert CTC labels back to base codes. */
inline Sequence
fromCtcLabels(const std::vector<int>& labels)
{
    Sequence seq;
    seq.reserve(labels.size());
    for (int l : labels) {
        if (l < 1 || l > 4)
            panic("fromCtcLabels: label ", l, " out of range");
        seq.push_back(static_cast<std::uint8_t>(l - 1));
    }
    return seq;
}

} // namespace swordfish::genomics

#endif // SWORDFISH_GENOMICS_SEQUENCE_H
