#include "align.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/logging.h"
#include "util/trace.h"

namespace swordfish::genomics {

namespace {

constexpr long kMinScore = std::numeric_limits<long>::min() / 4;

/** Traceback directions. */
enum Dir : std::uint8_t { DirNone = 0, DirDiag = 1, DirUp = 2, DirLeft = 3 };

/**
 * Banded Needleman-Wunsch core shared by the global and glocal modes.
 * In glocal mode, gaps of `b` before the first and after the last aligned
 * `a` character are free (fit alignment of a read inside a reference
 * window); they are still reported in the deletion/length counts, plus
 * separately as leading/trailingDeletions.
 */
AlignmentResult
alignImpl(const Sequence& a, const Sequence& b, std::size_t band,
          const AlignScores& scores, bool free_b_ends)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    AlignmentResult res;
    if (n == 0 || m == 0) {
        res.insertions = n;
        res.deletions = m;
        res.alignmentLength = n + m;
        res.leadingDeletions = m;
        res.score = free_b_ends
            ? static_cast<long>(n) * scores.gapPenalty
            : static_cast<long>(n + m) * scores.gapPenalty;
        if (m > 0)
            res.cigar = std::to_string(m) + "D";
        if (n > 0)
            res.cigar += std::to_string(n) + "I";
        return res;
    }

    const std::size_t len_diff = n > m ? n - m : m - n;
    if (band == 0)
        band = std::max<std::size_t>(32, std::max(n, m) / 20);
    band += len_diff;

    // Row i spans columns [lo(i), hi(i)] of the DP matrix; the band is
    // centred on the main (resampled) diagonal j ~ i * m / n.
    auto lo_of = [&](std::size_t i) -> std::size_t {
        const std::size_t center = i * m / n;
        return center > band ? center - band : 0;
    };
    auto hi_of = [&](std::size_t i) -> std::size_t {
        const std::size_t center = i * m / n;
        return std::min(m, center + band);
    };

    const std::size_t width = 2 * band + 2;
    std::vector<long> prev(width, kMinScore), cur(width, kMinScore);
    std::vector<std::uint8_t> trace((n + 1) * width, DirNone);

    // Row 0: leading gaps in b — free in glocal mode.
    const std::size_t lo0 = lo_of(0), hi0 = hi_of(0);
    for (std::size_t j = lo0; j <= hi0; ++j) {
        prev[j - lo0] = free_b_ends
            ? 0 : static_cast<long>(j) * scores.gapPenalty;
        trace[j - lo0] = (j == 0 || free_b_ends) ? DirNone : DirLeft;
    }

    for (std::size_t i = 1; i <= n; ++i) {
        const std::size_t lo = lo_of(i), hi = hi_of(i);
        const std::size_t plo = lo_of(i - 1), phi = hi_of(i - 1);
        std::fill(cur.begin(), cur.end(), kMinScore);
        std::uint8_t* trow = trace.data() + i * width;

        for (std::size_t j = lo; j <= hi; ++j) {
            long best = kMinScore;
            std::uint8_t dir = DirNone;

            if (j >= 1 && j - 1 >= plo && j - 1 <= phi
                && prev[j - 1 - plo] > kMinScore) {
                const bool is_match = a[i - 1] == b[j - 1];
                const long s = prev[j - 1 - plo]
                    + (is_match ? scores.match : scores.mismatch);
                if (s > best) {
                    best = s;
                    dir = DirDiag;
                }
            }
            if (j >= plo && j <= phi && prev[j - plo] > kMinScore) {
                const long s = prev[j - plo] + scores.gapPenalty;
                if (s > best) {
                    best = s;
                    dir = DirUp;
                }
            }
            if (j >= 1 && j - 1 >= lo && cur[j - 1 - lo] > kMinScore) {
                const long s = cur[j - 1 - lo] + scores.gapPenalty;
                if (s > best) {
                    best = s;
                    dir = DirLeft;
                }
            }
            if (j == 0) {
                // First column: leading gaps in a.
                const long s = static_cast<long>(i) * scores.gapPenalty;
                if (s > best) {
                    best = s;
                    dir = DirUp;
                }
            }
            cur[j - lo] = best;
            trow[j - lo] = dir;
        }
        std::swap(prev, cur);
    }

    // Select the traceback start: (n, m) for global, the best last-row
    // cell for glocal (trailing b-gaps free).
    const std::size_t lo_n = lo_of(n), hi_n = hi_of(n);
    std::size_t j_start = m;
    if (free_b_ends) {
        long best = kMinScore;
        for (std::size_t j = lo_n; j <= hi_n; ++j) {
            if (prev[j - lo_n] > best) {
                best = prev[j - lo_n];
                j_start = j;
            }
        }
        if (best <= kMinScore)
            panic("alignGlocal: band too narrow for inputs (", n, ", ", m,
                  ")");
        res.score = best;
        res.trailingDeletions = m - j_start;
        res.deletions += m - j_start;
    } else {
        if (m < lo_n || m > hi_n || prev[m - lo_n] <= kMinScore)
            panic("alignGlobal: band too narrow for inputs (", n, ", ", m,
                  ")");
        res.score = prev[m - lo_n];
    }

    // Traceback; ops are collected back-to-front for the CIGAR.
    std::string ops;
    ops.reserve(n + m);
    for (std::size_t k = 0; k < res.trailingDeletions; ++k)
        ops.push_back('D');
    std::size_t i = n, j = j_start;
    while (i > 0 || j > 0) {
        const std::size_t lo = lo_of(i);
        const std::uint8_t dir = trace[i * width + (j - lo)];
        if (dir == DirDiag) {
            if (a[i - 1] == b[j - 1])
                ++res.matches;
            else
                ++res.mismatches;
            ops.push_back('M');
            --i;
            --j;
        } else if (dir == DirUp) {
            ++res.insertions;
            ops.push_back('I');
            --i;
        } else if (dir == DirLeft) {
            ++res.deletions;
            ops.push_back('D');
            --j;
        } else {
            // Origin (global) or a free leading-gap cell on row 0
            // (glocal): everything left in `b` is a leading deletion.
            if (i > 0) {
                res.insertions += i;
                ops.append(i, 'I');
                i = 0;
            }
            if (j > 0) {
                res.leadingDeletions += j;
                res.deletions += j;
                ops.append(j, 'D');
                j = 0;
            }
        }
    }
    res.alignmentLength = res.matches + res.mismatches + res.insertions
        + res.deletions;

    // Run-length encode the reversed op string into a CIGAR.
    std::reverse(ops.begin(), ops.end());
    for (std::size_t k = 0; k < ops.size();) {
        std::size_t run = 1;
        while (k + run < ops.size() && ops[k + run] == ops[k])
            ++run;
        res.cigar += std::to_string(run);
        res.cigar.push_back(ops[k]);
        k += run;
    }
    return res;
}

} // namespace

AlignmentResult
alignGlobal(const Sequence& a, const Sequence& b, std::size_t band,
            const AlignScores& scores)
{
    static const SpanStat kAlignSpan = metrics().span("align");
    static const Counter kAlignCalls = metrics().counter("align.calls");
    TraceSpan trace(kAlignSpan);
    kAlignCalls.add();
    return alignImpl(a, b, band, scores, /*free_b_ends=*/false);
}

AlignmentResult
alignGlocal(const Sequence& a, const Sequence& b, std::size_t band,
            const AlignScores& scores)
{
    static const SpanStat kAlignSpan = metrics().span("align");
    static const Counter kAlignCalls = metrics().counter("align.calls");
    TraceSpan trace(kAlignSpan);
    kAlignCalls.add();
    return alignImpl(a, b, band, scores, /*free_b_ends=*/true);
}

std::size_t
editDistance(const Sequence& a, const Sequence& b)
{
    const std::size_t n = a.size(), m = b.size();
    std::vector<std::size_t> prev(m + 1), cur(m + 1);
    for (std::size_t j = 0; j <= m; ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= n; ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= m; ++j) {
            const std::size_t sub = prev[j - 1]
                + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({sub, prev[j] + 1, cur[j - 1] + 1});
        }
        std::swap(prev, cur);
    }
    return prev[m];
}

} // namespace swordfish::genomics
