#include "conv1d.h"

namespace swordfish::nn {

Conv1d::Conv1d(std::string name, std::size_t in_channels,
               std::size_t out_channels, std::size_t kernel,
               std::size_t stride, Rng& rng)
    : name_(std::move(name)),
      inChannels_(in_channels),
      kernel_(kernel),
      stride_(stride),
      weight_(name_ + ".w", out_channels, kernel * in_channels),
      bias_(name_ + ".b", 1, out_channels)
{
    if (stride == 0 || kernel == 0)
        panic("Conv1d: kernel and stride must be positive");
    xavierInit(weight_.value, kernel * in_channels, out_channels, rng);
}

Matrix
Conv1d::im2col(const Matrix& x) const
{
    const std::size_t t_out = outSteps(x.rows());
    Matrix col(t_out, kernel_ * inChannels_);
    for (std::size_t t = 0; t < t_out; ++t) {
        float* dst = col.rowPtr(t);
        const std::size_t start = t * stride_;
        for (std::size_t k = 0; k < kernel_; ++k) {
            const float* src = x.rowPtr(start + k);
            for (std::size_t c = 0; c < inChannels_; ++c)
                dst[k * inChannels_ + c] = src[c];
        }
    }
    return col;
}

Matrix
Conv1d::forward(const Matrix& x)
{
    if (x.cols() != inChannels_)
        panic("Conv1d::forward: expected ", inChannels_, " channels, got ",
              x.cols());
    if (outSteps(x.rows()) == 0)
        panic("Conv1d::forward: input too short (", x.rows(), " < ",
              kernel_, ")");
    inSteps_ = x.rows();
    colCache_ = im2col(x);
    Matrix y;
    backend().matmul(weight_.name, weight_.value, colCache_, y);
    addRowBias(y, bias_.value.raw());
    return y;
}

void
Conv1d::forwardBatch(SequenceBatch& batch)
{
    if (batch.data.cols() != inChannels_)
        panic("Conv1d::forwardBatch: expected ", inChannels_,
              " channels, got ", batch.data.cols());

    // Per-lane im2col into one stacked lowered matrix, then a single
    // batched VMM over all lanes (the windows never straddle lanes).
    const std::size_t lanes = batch.laneCount();
    std::vector<std::size_t> out_offsets(lanes + 1, 0);
    for (std::size_t l = 0; l < lanes; ++l) {
        const std::size_t t_out = outSteps(batch.laneRows(l));
        if (t_out == 0)
            panic("Conv1d::forwardBatch: lane ", l, " too short (",
                  batch.laneRows(l), " < ", kernel_, ")");
        out_offsets[l + 1] = out_offsets[l] + t_out;
    }

    Matrix col(out_offsets[lanes], kernel_ * inChannels_);
    BatchLayout layout;
    layout.reserve(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
        const std::size_t t_out = out_offsets[l + 1] - out_offsets[l];
        layout.push_back({l, t_out});
        for (std::size_t t = 0; t < t_out; ++t) {
            float* dst = col.rowPtr(out_offsets[l] + t);
            const std::size_t start = batch.laneOffset(l) + t * stride_;
            for (std::size_t k = 0; k < kernel_; ++k) {
                const float* src = batch.data.rowPtr(start + k);
                for (std::size_t c = 0; c < inChannels_; ++c)
                    dst[k * inChannels_ + c] = src[c];
            }
        }
    }

    Matrix y;
    backend().matmulBatched(weight_.name, weight_.value, col, y, layout);
    addRowBias(y, bias_.value.raw());
    batch.data = std::move(y);
    batch.offsets = std::move(out_offsets);
}

Matrix
Conv1d::backward(const Matrix& dy)
{
    // Lowered layer is a Linear over colCache_: reuse the same math, then
    // scatter the column gradient back to the time axis (col2im).
    gemmAT(dy, colCache_, weight_.grad, /*accumulate=*/true);
    for (std::size_t t = 0; t < dy.rows(); ++t)
        for (std::size_t c = 0; c < dy.cols(); ++c)
            bias_.grad(0, c) += dy(t, c);

    Matrix dcol;
    gemm(dy, weight_.value, dcol);

    Matrix dx(inSteps_, inChannels_);
    for (std::size_t t = 0; t < dcol.rows(); ++t) {
        const float* src = dcol.rowPtr(t);
        const std::size_t start = t * stride_;
        for (std::size_t k = 0; k < kernel_; ++k) {
            float* dst = dx.rowPtr(start + k);
            for (std::size_t c = 0; c < inChannels_; ++c)
                dst[c] += src[k * inChannels_ + c];
        }
    }
    return dx;
}

std::unique_ptr<Module>
Conv1d::clone() const
{
    auto copy = std::make_unique<Conv1d>(*this);
    copy->colCache_ = Matrix();
    copy->zeroGrad();
    copy->setBackend(nullptr);
    return copy;
}

std::string
Conv1d::describe() const
{
    return "Conv1d(" + std::to_string(inChannels_) + " -> "
        + std::to_string(weight_.value.rows()) + ", k="
        + std::to_string(kernel_) + ", s=" + std::to_string(stride_) + ")";
}

} // namespace swordfish::nn
