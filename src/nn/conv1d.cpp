#include "conv1d.h"

namespace swordfish::nn {

Conv1d::Conv1d(std::string name, std::size_t in_channels,
               std::size_t out_channels, std::size_t kernel,
               std::size_t stride, Rng& rng)
    : name_(std::move(name)),
      inChannels_(in_channels),
      kernel_(kernel),
      stride_(stride),
      weight_(name_ + ".w", out_channels, kernel * in_channels),
      bias_(name_ + ".b", 1, out_channels)
{
    if (stride == 0 || kernel == 0)
        panic("Conv1d: kernel and stride must be positive");
    xavierInit(weight_.value, kernel * in_channels, out_channels, rng);
}

Matrix
Conv1d::im2col(const Matrix& x) const
{
    const std::size_t t_out = outSteps(x.rows());
    Matrix col(t_out, kernel_ * inChannels_);
    for (std::size_t t = 0; t < t_out; ++t) {
        float* dst = col.rowPtr(t);
        const std::size_t start = t * stride_;
        for (std::size_t k = 0; k < kernel_; ++k) {
            const float* src = x.rowPtr(start + k);
            for (std::size_t c = 0; c < inChannels_; ++c)
                dst[k * inChannels_ + c] = src[c];
        }
    }
    return col;
}

Matrix
Conv1d::forward(const Matrix& x)
{
    if (x.cols() != inChannels_)
        panic("Conv1d::forward: expected ", inChannels_, " channels, got ",
              x.cols());
    if (outSteps(x.rows()) == 0)
        panic("Conv1d::forward: input too short (", x.rows(), " < ",
              kernel_, ")");
    inSteps_ = x.rows();
    colCache_ = im2col(x);
    Matrix y;
    backend().matmul(weight_.name, weight_.value, colCache_, y);
    addRowBias(y, bias_.value.raw());
    return y;
}

Matrix
Conv1d::backward(const Matrix& dy)
{
    // Lowered layer is a Linear over colCache_: reuse the same math, then
    // scatter the column gradient back to the time axis (col2im).
    gemmAT(dy, colCache_, weight_.grad, /*accumulate=*/true);
    for (std::size_t t = 0; t < dy.rows(); ++t)
        for (std::size_t c = 0; c < dy.cols(); ++c)
            bias_.grad(0, c) += dy(t, c);

    Matrix dcol;
    gemm(dy, weight_.value, dcol);

    Matrix dx(inSteps_, inChannels_);
    for (std::size_t t = 0; t < dcol.rows(); ++t) {
        const float* src = dcol.rowPtr(t);
        const std::size_t start = t * stride_;
        for (std::size_t k = 0; k < kernel_; ++k) {
            float* dst = dx.rowPtr(start + k);
            for (std::size_t c = 0; c < inChannels_; ++c)
                dst[c] += src[k * inChannels_ + c];
        }
    }
    return dx;
}

std::unique_ptr<Module>
Conv1d::clone() const
{
    auto copy = std::make_unique<Conv1d>(*this);
    copy->colCache_ = Matrix();
    copy->zeroGrad();
    copy->setBackend(nullptr);
    return copy;
}

std::string
Conv1d::describe() const
{
    return "Conv1d(" + std::to_string(inChannels_) + " -> "
        + std::to_string(weight_.value.rows()) + ", k="
        + std::to_string(kernel_) + ", s=" + std::to_string(stride_) + ")";
}

} // namespace swordfish::nn
