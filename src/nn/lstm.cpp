#include "lstm.h"

#include <algorithm>
#include <cmath>

#include "nn/activations.h"
#include "tensor/kernels.h"

namespace swordfish::nn {

Lstm::Lstm(std::string name, std::size_t in, std::size_t hidden,
           bool reverse, Rng& rng)
    : name_(std::move(name)),
      in_(in),
      hidden_(hidden),
      reverse_(reverse),
      wih_(name_ + ".wih", 4 * hidden, in),
      whh_(name_ + ".whh", 4 * hidden, hidden),
      bias_(name_ + ".b", 1, 4 * hidden)
{
    xavierInit(wih_.value, in, hidden, rng);
    xavierInit(whh_.value, hidden, hidden, rng);
    // Positive forget-gate bias: standard trick for stable early training.
    for (std::size_t h = 0; h < hidden_; ++h)
        bias_.value(0, hidden_ + h) = 1.0f;
}

Matrix
Lstm::timeReversed(const Matrix& m)
{
    Matrix out(m.rows(), m.cols());
    for (std::size_t t = 0; t < m.rows(); ++t) {
        const float* src = m.rowPtr(m.rows() - 1 - t);
        float* dst = out.rowPtr(t);
        for (std::size_t c = 0; c < m.cols(); ++c)
            dst[c] = src[c];
    }
    return out;
}

Matrix
Lstm::forward(const Matrix& x)
{
    if (x.cols() != in_)
        panic("Lstm::forward: expected ", in_, " channels, got ", x.cols());

    input_ = reverse_ ? timeReversed(x) : x;
    const std::size_t t_len = input_.rows();
    const std::size_t h4 = 4 * hidden_;

    // Input projection for all timesteps at once: one large VMM.
    Matrix z_in;
    backend().matmul(wih_.name, wih_.value, input_, z_in);

    gates_ = Matrix(t_len, h4);
    cells_ = Matrix(t_len, hidden_);
    tanhC_ = Matrix(t_len, hidden_);
    hidden_states_ = Matrix(t_len, hidden_);

    Matrix h_prev(1, hidden_);
    std::vector<float> c_prev(hidden_, 0.0f);
    Matrix z_rec;
    for (std::size_t t = 0; t < t_len; ++t) {
        backend().matmul(whh_.name, whh_.value, h_prev, z_rec);
        // Fused gate math via the SIMD kernel layer; gates_/cells_/tanhC_
        // receive the activated values the backward pass replays.
        float* c = cells_.rowPtr(t);
        float* h = hidden_states_.rowPtr(t);
        kernels::lstmGateBlock(z_in.rowPtr(t), z_rec.rowPtr(0),
                               bias_.value.rowPtr(0), hidden_,
                               c_prev.data(), c, tanhC_.rowPtr(t), h,
                               gates_.rowPtr(t));
        std::copy(c, c + hidden_, c_prev.begin());
        std::copy(h, h + hidden_, h_prev.rowPtr(0));
    }

    Matrix y = reverse_ ? timeReversed(hidden_states_) : hidden_states_;
    backend().onActivations(y);
    return y;
}

void
Lstm::forwardBatch(SequenceBatch& batch)
{
    if (batch.data.cols() != in_)
        panic("Lstm::forwardBatch: expected ", in_, " channels, got ",
              batch.data.cols());

    const std::size_t lanes = batch.laneCount();
    const std::size_t h4 = 4 * hidden_;

    // Per-lane time reversal: orientation is a per-sequence property.
    Matrix input = batch.data;
    if (reverse_) {
        for (std::size_t l = 0; l < lanes; ++l) {
            const std::size_t off = batch.laneOffset(l);
            const std::size_t t_len = batch.laneRows(l);
            for (std::size_t t = 0; t < t_len; ++t) {
                const float* src = batch.data.rowPtr(off + t_len - 1 - t);
                float* dst = input.rowPtr(off + t);
                for (std::size_t c = 0; c < in_; ++c)
                    dst[c] = src[c];
            }
        }
    }

    // Input projection for every lane and timestep in one stacked VMM.
    Matrix z_in;
    backend().matmulBatched(wih_.name, wih_.value, input, z_in,
                            batch.layout());

    Matrix out(batch.data.rows(), hidden_);
    Matrix h_prev(lanes, hidden_); // zero-initialized, one row per lane
    std::vector<std::vector<float>> c_prev(
        lanes, std::vector<float>(hidden_, 0.0f));
    std::size_t t_max = 0;
    for (std::size_t l = 0; l < lanes; ++l)
        t_max = std::max(t_max, batch.laneRows(l));

    // One recurrent VMM per timestep over the still-active lanes: gather
    // their previous hidden states, run the batched projection, scatter
    // the gate math back per lane. Each lane draws conversion noise from
    // its own stream for exactly its first T_l steps, reproducing the
    // serial per-lane sequence bitwise.
    Matrix h_act, z_rec;
    std::vector<std::size_t> active;
    BatchLayout step_layout;
    const float* b = bias_.value.rowPtr(0);
    for (std::size_t t = 0; t < t_max; ++t) {
        active.clear();
        step_layout.clear();
        for (std::size_t l = 0; l < lanes; ++l) {
            if (batch.laneRows(l) > t) {
                active.push_back(l);
                step_layout.push_back({l, 1});
            }
        }
        h_act.resize(active.size(), hidden_);
        for (std::size_t i = 0; i < active.size(); ++i) {
            const float* src = h_prev.rowPtr(active[i]);
            float* dst = h_act.rowPtr(i);
            for (std::size_t j = 0; j < hidden_; ++j)
                dst[j] = src[j];
        }
        backend().matmulBatched(whh_.name, whh_.value, h_act, z_rec,
                                step_layout);

        for (std::size_t i = 0; i < active.size(); ++i) {
            const std::size_t l = active[i];
            const float* zi = z_in.rowPtr(batch.laneOffset(l) + t);
            const float* zr = z_rec.rowPtr(i);
            float* h = out.rowPtr(batch.laneOffset(l) + t);
            float* hp = h_prev.rowPtr(l);
            std::vector<float>& cp = c_prev[l];
            // Same fused kernel as the serial path (inference-only here, so
            // no gates/tanh(c) stash); c updates in place.
            kernels::lstmGateBlock(zi, zr, b, hidden_, cp.data(), cp.data(),
                                   nullptr, h, nullptr);
            std::copy(h, h + hidden_, hp);
        }
    }
    (void)h4;

    if (reverse_) {
        // Un-reverse each lane in place (swap rows around the midpoint).
        std::vector<float> tmp(hidden_);
        for (std::size_t l = 0; l < lanes; ++l) {
            const std::size_t off = batch.laneOffset(l);
            const std::size_t t_len = batch.laneRows(l);
            for (std::size_t t = 0; t < t_len / 2; ++t) {
                float* a = out.rowPtr(off + t);
                float* z = out.rowPtr(off + t_len - 1 - t);
                std::copy(a, a + hidden_, tmp.begin());
                std::copy(z, z + hidden_, a);
                std::copy(tmp.begin(), tmp.end(), z);
            }
        }
    }

    batch.data = std::move(out);
    for (std::size_t l = 0; l < lanes; ++l)
        backend().onActivationsRows(batch.data, batch.laneOffset(l),
                                    batch.laneOffset(l)
                                        + batch.laneRows(l));
}

Matrix
Lstm::backward(const Matrix& dy_in)
{
    const Matrix dy = reverse_ ? timeReversed(dy_in) : dy_in;
    const std::size_t t_len = input_.rows();
    const std::size_t h4 = 4 * hidden_;

    Matrix dz_all(t_len, h4);
    std::vector<float> dh_next(hidden_, 0.0f);
    std::vector<float> dc_next(hidden_, 0.0f);
    std::vector<float> dh_rec(hidden_, 0.0f);

    for (std::size_t tt = t_len; tt-- > 0;) {
        const float* g = gates_.rowPtr(tt);
        const float* c = cells_.rowPtr(tt);
        const float* tc = tanhC_.rowPtr(tt);
        const float* c_prev = tt > 0 ? cells_.rowPtr(tt - 1) : nullptr;
        float* dz = dz_all.rowPtr(tt);

        for (std::size_t j = 0; j < hidden_; ++j) {
            const float ig = g[j];
            const float fg = g[hidden_ + j];
            const float gg = g[2 * hidden_ + j];
            const float og = g[3 * hidden_ + j];
            const float dh = dy(tt, j) + dh_next[j];
            const float dc = dh * og * tanhGradFromOut(tc[j]) + dc_next[j];
            const float cp = c_prev != nullptr ? c_prev[j] : 0.0f;

            dz[j] = dc * gg * sigmoidGradFromOut(ig);
            dz[hidden_ + j] = dc * cp * sigmoidGradFromOut(fg);
            dz[2 * hidden_ + j] = dc * ig * tanhGradFromOut(gg);
            dz[3 * hidden_ + j] = dh * tc[j] * sigmoidGradFromOut(og);
            dc_next[j] = dc * fg;
        }
        (void)c;

        // dh_next = Whh^T * dz ; accumulate dWhh += dz (x) h_{t-1}.
        std::vector<float> dz_vec(dz, dz + h4);
        gemvT(whh_.value, dz_vec, dh_rec);
        dh_next = dh_rec;
        if (tt > 0) {
            const float* h_prev = hidden_states_.rowPtr(tt - 1);
            for (std::size_t r = 0; r < h4; ++r) {
                if (dz[r] == 0.0f)
                    continue;
                float* wrow = whh_.grad.rowPtr(r);
                for (std::size_t j = 0; j < hidden_; ++j)
                    wrow[j] += dz[r] * h_prev[j];
            }
        }
        for (std::size_t r = 0; r < h4; ++r)
            bias_.grad(0, r) += dz[r];
    }

    // Input-projection gradients over all timesteps at once.
    gemmAT(dz_all, input_, wih_.grad, /*accumulate=*/true);
    Matrix dx;
    gemm(dz_all, wih_.value, dx);
    return reverse_ ? timeReversed(dx) : dx;
}

std::unique_ptr<Module>
Lstm::clone() const
{
    auto copy = std::make_unique<Lstm>(*this);
    copy->input_ = Matrix();
    copy->gates_ = Matrix();
    copy->cells_ = Matrix();
    copy->tanhC_ = Matrix();
    copy->hidden_states_ = Matrix();
    copy->zeroGrad();
    copy->setBackend(nullptr);
    return copy;
}

std::string
Lstm::describe() const
{
    return "LSTM(" + std::to_string(in_) + " -> " + std::to_string(hidden_)
        + (reverse_ ? ", reverse" : ", forward") + ")";
}

} // namespace swordfish::nn
