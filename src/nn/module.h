/**
 * @file
 * Core abstractions of the from-scratch NN library: named parameters, the
 * Module (layer) interface, and the VmmBackend hook through which Swordfish
 * redirects every vector-matrix multiplication to a (possibly non-ideal)
 * crossbar implementation.
 *
 * Design notes
 * ------------
 * Sequences are time-major float matrices [T x channels]; there is no batch
 * dimension — the basecaller trains chunk-by-chunk with gradient
 * accumulation, which is the right tradeoff on a small-core machine and
 * mirrors how the accelerator streams chunks (paper Section 3.2: "the input
 * streams into the first layer").
 *
 * Every weight matrix that is large enough to be mapped onto crossbars is
 * applied through VmmBackend::matmul(name, W, X, Y) computing Y = X * W^T.
 * The default backend is an exact GEMM; the Swordfish core installs a
 * backend that routes each named matrix through programmed crossbar tiles
 * with DAC/ADC transfer functions (paper Fig. 4/5).
 */

#ifndef SWORDFISH_NN_MODULE_H
#define SWORDFISH_NN_MODULE_H

#include <memory>
#include <string>
#include <vector>

#include "nn/batch.h"
#include "tensor/lanes.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace swordfish::nn {

using swordfish::Matrix;

/** A trainable tensor: value plus accumulated gradient, with a name. */
struct Parameter
{
    std::string name;
    Matrix value;
    Matrix grad;

    Parameter() = default;

    Parameter(std::string n, std::size_t rows, std::size_t cols)
        : name(std::move(n)), value(rows, cols), grad(rows, cols)
    {}

    /** Clear the accumulated gradient. */
    void zeroGrad() { grad.zero(); }

    std::size_t size() const { return value.size(); }
};

/**
 * Strategy interface for executing Y = X * W^T.
 *
 * @param name stable identifier of the weight matrix (e.g. "lstm0.wih"),
 *             used by crossbar backends to look up programmed tiles.
 * @param w    the canonical (digital) weight matrix, out_features x
 *             in_features.
 * @param x    input activations, T x in_features.
 * @param y    output, resized to T x out_features.
 */
class VmmBackend
{
  public:
    virtual ~VmmBackend() = default;

    virtual void matmul(const std::string& name, const Matrix& w,
                        const Matrix& x, Matrix& y) = 0;

    /**
     * Post-activation hook: backends that model quantized/limited-precision
     * activation storage override this (default: leave exact).
     */
    virtual void onActivations(Matrix&) {}

    /**
     * Per-read noise-stream hook: the evaluation loops call this on the
     * processing thread before each read's forward pass with a stable
     * stream id (the read index). Backends that consume randomness at
     * inference time (per-conversion ADC noise) derive that read's noise
     * stream from it, making results independent of which thread runs
     * which read — the determinism contract of the parallel evaluator.
     * Default: stateless backends ignore it.
     */
    virtual void beginRead(std::uint64_t /*read_stream*/) {}

    /**
     * Open a batched pass: one noise stream per lane, keyed the same way
     * beginRead() keys a serial read. Backends that consume randomness keep
     * one stream per lane so batched results stay bitwise-identical to
     * running the lanes serially. Default: stateless backends ignore it.
     */
    virtual void beginBatch(const std::vector<std::uint64_t>& /*streams*/) {}

    /** Close the batched pass opened by beginBatch(). */
    virtual void endBatch() {}

    /**
     * Route subsequent *serial* matmul()/onActivations() calls to the given
     * lane's noise stream (kNoLane deselects). Used by the generic per-lane
     * forwardBatch() fallback so layers without a native batched path still
     * draw from the right stream.
     */
    virtual void selectBatchLane(std::size_t /*lane*/) {}

    /**
     * Batched Y = X * W^T where x stacks several lanes row-wise as
     * described by layout. Per-lane input state (normalization scale,
     * conversion noise) must match what per-lane matmul() calls would
     * produce. Default: backends without lane-dependent state execute the
     * stacked operand as one plain matmul.
     */
    virtual void
    matmulBatched(const std::string& name, const Matrix& w, const Matrix& x,
                  Matrix& y, const BatchLayout& layout)
    {
        (void)layout;
        matmul(name, w, x, y);
    }

    /**
     * Ahead-of-time compile hook: the evaluation entry points offer every
     * model parameter to the backend before the first read, so backends
     * with a per-weight setup cost (crossbar programming, int8 weight
     * quantization, execution-plan lowering) can pay it up front instead
     * of on the first matmul. Backends filter for the parameters they map
     * (biases are offered too) and must produce state bitwise identical
     * to what lazy first-use setup would have produced — programming
     * seeds are pure in (run seed, name, tile), never in call order.
     * Default: stateless backends ignore it.
     */
    virtual void prepareWeight(const std::string& /*name*/,
                               const Matrix& /*w*/)
    {}

    /**
     * Called once after the prepareWeight() sweep: backends that build an
     * execution plan seal it here (the plan is immutable afterwards, which
     * is what lets the hot path read it without locking). Default: no-op.
     */
    virtual void finishCompile() {}

    /**
     * Health-epoch granularity in reads: > 0 when the backend runs a
     * self-healing maintenance loop (tile aging + probes + refresh) every
     * that-many reads. The evaluation loops align their processing blocks
     * to this so tiles stay frozen while reads are in flight. Default 0:
     * no maintenance loop.
     */
    virtual std::size_t healthEpochReads() const { return 0; }

    /**
     * Advance the maintenance loop one epoch: age tiles, probe their
     * health, and refresh / fail over unhealthy ones. Called serially
     * between read blocks (never concurrently with matmuls). Default:
     * no-op for backends without a healing runtime.
     */
    virtual void healthEpochAdvance() {}

    /**
     * True once healing has exhausted its spares and a dead tile can no
     * longer be repaired: subsequent reads through this backend are
     * unreliable and the caller should degrade them instead of trusting
     * the output. Default: never degraded.
     */
    virtual bool healthDegraded() const { return false; }

    /**
     * onActivations() restricted to rows [row_begin, row_end) of a stacked
     * operand — one lane's slice. Default: copy out, apply, copy back.
     */
    virtual void
    onActivationsRows(Matrix& m, std::size_t row_begin, std::size_t row_end)
    {
        if (row_begin >= row_end)
            return;
        Matrix slice(row_end - row_begin, m.cols());
        float* base = m.raw().data() + row_begin * m.cols();
        std::copy(base, base + slice.size(), slice.raw().begin());
        onActivations(slice);
        std::copy(slice.raw().begin(), slice.raw().end(), base);
    }
};

/** Exact float GEMM backend (the digital / training path). */
class IdealVmmBackend : public VmmBackend
{
  public:
    void
    matmul(const std::string&, const Matrix& w, const Matrix& x,
           Matrix& y) override
    {
        gemmBT(x, w, y);
    }
};

/** Process-wide shared ideal backend instance. */
VmmBackend& idealBackend();

/**
 * Base class for all layers.
 *
 * Contract: forward() caches whatever backward() needs; backward() consumes
 * that cache, accumulates parameter gradients, and returns the gradient
 * w.r.t. the layer input. A second forward() before backward() overwrites
 * the cache (single-sample training).
 */
class Module
{
  public:
    virtual ~Module() = default;

    /** Forward pass: input [T x in] to output [T' x out]. */
    virtual Matrix forward(const Matrix& x) = 0;

    /** Backward pass: dLoss/dOutput to dLoss/dInput; accumulates grads. */
    virtual Matrix backward(const Matrix& dy) = 0;

    /**
     * Batched forward pass over a group of stacked lanes (inference only —
     * no backward caches are maintained). The generic fallback runs each
     * lane through forward() with the backend pointed at that lane's noise
     * stream; layers whose work amortizes across lanes override this with
     * a native stacked implementation. Either way the per-lane results are
     * bitwise-identical to serial forward() calls.
     */
    virtual void
    forwardBatch(SequenceBatch& batch)
    {
        std::vector<Matrix> outs(batch.laneCount());
        for (std::size_t lane = 0; lane < batch.laneCount(); ++lane) {
            backend().selectBatchLane(lane);
            outs[lane] = forward(batch.laneMatrix(lane));
        }
        backend().selectBatchLane(kNoLane);
        batch.assignLanes(outs);
    }

    /** All trainable parameters of this layer (may be empty). */
    virtual std::vector<Parameter*> parameters() { return {}; }

    /** Deep copy with the same weights (fresh gradient state). */
    virtual std::unique_ptr<Module> clone() const = 0;

    /** Human-readable layer description for mapping reports. */
    virtual std::string describe() const = 0;

    /** Output channel count given an input channel count. */
    virtual std::size_t outChannels(std::size_t in_channels) const = 0;

    /**
     * Downsampling factor: output timesteps = input timesteps / factor
     * (exactly 1 for everything except strided convolutions).
     */
    virtual std::size_t strideFactor() const { return 1; }

    /** Clear gradients of all parameters. */
    void
    zeroGrad()
    {
        for (Parameter* p : parameters())
            p->zeroGrad();
    }

    /** Install the VMM execution backend (nullptr resets to ideal). */
    void
    setBackend(VmmBackend* backend)
    {
        backend_ = backend != nullptr ? backend : &idealBackend();
    }

    VmmBackend& backend() const { return *backend_; }

  protected:
    VmmBackend* backend_ = &idealBackend();
};

/** Xavier-uniform initialization for a weight matrix. */
void xavierInit(Matrix& w, std::size_t fan_in, std::size_t fan_out, Rng& rng);

} // namespace swordfish::nn

#endif // SWORDFISH_NN_MODULE_H
