#include "ctc.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <unordered_map>

#include "tensor/kernels.h"
#include "util/logging.h"

namespace swordfish::nn {

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();
constexpr int kBlank = 0;

/** log(exp(a) + exp(b)) without overflow. */
float
logAdd(float a, float b)
{
    if (a == kNegInf)
        return b;
    if (b == kNegInf)
        return a;
    const float hi = std::max(a, b);
    const float lo = std::min(a, b);
    return hi + std::log1p(std::exp(lo - hi));
}

} // namespace

Matrix
logSoftmaxRows(const Matrix& logits)
{
    Matrix out = logits;
    for (std::size_t t = 0; t < out.rows(); ++t) {
        float* row = out.rowPtr(t);
        const float mx = kernels::rowMax(row, out.cols());
        float sum = 0.0f;
        for (std::size_t k = 0; k < out.cols(); ++k)
            sum += std::exp(row[k] - mx);
        const float lse = mx + std::log(sum);
        for (std::size_t k = 0; k < out.cols(); ++k)
            row[k] -= lse;
    }
    return out;
}

CtcResult
ctcLoss(const Matrix& logits, const std::vector<int>& target)
{
    const std::size_t t_len = logits.rows();
    const std::size_t n_cls = logits.cols();
    const std::size_t l_len = target.size();
    const std::size_t s_len = 2 * l_len + 1;

    CtcResult res;
    res.dLogits = Matrix(t_len, n_cls);

    // Extended label sequence: blank, l1, blank, l2, ..., blank.
    std::vector<int> ext(s_len, kBlank);
    for (std::size_t i = 0; i < l_len; ++i) {
        const int label = target[i];
        if (label <= 0 || static_cast<std::size_t>(label) >= n_cls)
            panic("ctcLoss: label ", label, " out of range");
        ext[2 * i + 1] = label;
    }

    // Feasibility: need enough frames to emit every label (plus forced
    // blanks between repeated labels).
    std::size_t min_frames = l_len;
    for (std::size_t i = 1; i < l_len; ++i)
        if (target[i] == target[i - 1])
            ++min_frames;
    if (t_len < min_frames || t_len == 0) {
        res.feasible = false;
        res.loss = 1e9;
        return res;
    }

    const Matrix lp = logSoftmaxRows(logits);

    auto allow_skip = [&](std::size_t s) {
        return s >= 2 && ext[s] != kBlank && ext[s] != ext[s - 2];
    };

    // Forward variables (alpha includes frame t's emission).
    Matrix alpha(t_len, s_len);
    alpha.fill(kNegInf);
    alpha(0, 0) = lp(0, ext[0]);
    if (s_len > 1)
        alpha(0, 1) = lp(0, ext[1]);
    for (std::size_t t = 1; t < t_len; ++t) {
        for (std::size_t s = 0; s < s_len; ++s) {
            float a = alpha(t - 1, s);
            if (s >= 1)
                a = logAdd(a, alpha(t - 1, s - 1));
            if (allow_skip(s))
                a = logAdd(a, alpha(t - 1, s - 2));
            if (a != kNegInf)
                alpha(t, s) = a + lp(t, ext[s]);
        }
    }

    float log_p = alpha(t_len - 1, s_len - 1);
    if (s_len > 1)
        log_p = logAdd(log_p, alpha(t_len - 1, s_len - 2));
    if (log_p == kNegInf) {
        res.feasible = false;
        res.loss = 1e9;
        return res;
    }
    res.loss = -static_cast<double>(log_p);

    // Backward variables (beta excludes frame t's emission).
    Matrix beta(t_len, s_len);
    beta.fill(kNegInf);
    beta(t_len - 1, s_len - 1) = 0.0f;
    if (s_len > 1)
        beta(t_len - 1, s_len - 2) = 0.0f;
    for (std::size_t t = t_len - 1; t-- > 0;) {
        for (std::size_t s = 0; s < s_len; ++s) {
            float b = beta(t + 1, s) == kNegInf ? kNegInf
                : beta(t + 1, s) + lp(t + 1, ext[s]);
            if (s + 1 < s_len && beta(t + 1, s + 1) != kNegInf)
                b = logAdd(b, beta(t + 1, s + 1) + lp(t + 1, ext[s + 1]));
            if (s + 2 < s_len && allow_skip(s + 2)
                && beta(t + 1, s + 2) != kNegInf) {
                b = logAdd(b, beta(t + 1, s + 2) + lp(t + 1, ext[s + 2]));
            }
            beta(t, s) = b;
        }
    }

    // Gradient w.r.t. logits: softmax(t,k) - sum_{s: ext[s]==k} gamma(t,s).
    for (std::size_t t = 0; t < t_len; ++t) {
        float* grow = res.dLogits.rowPtr(t);
        for (std::size_t k = 0; k < n_cls; ++k)
            grow[k] = std::exp(lp(t, k));
        for (std::size_t s = 0; s < s_len; ++s) {
            const float ab = alpha(t, s) + beta(t, s);
            if (ab == kNegInf)
                continue;
            grow[ext[s]] -= std::exp(ab - log_p);
        }
    }
    return res;
}

std::vector<int>
ctcGreedyDecode(const Matrix& logits)
{
    std::vector<int> out;
    int prev = kBlank;
    for (std::size_t t = 0; t < logits.rows(); ++t) {
        const float* row = logits.rowPtr(t);
        const int best = static_cast<int>(
            kernels::argmaxRow(row, logits.cols()));
        if (best != kBlank && best != prev)
            out.push_back(best);
        prev = best;
    }
    return out;
}

namespace {

/** Beam entry: probability mass ending in blank vs. in the last symbol. */
struct BeamScore
{
    float pBlank = kNegInf;
    float pLabel = kNegInf;

    float total() const { return logAdd(pBlank, pLabel); }
};

std::string
prefixKey(const std::vector<int>& prefix)
{
    std::string key;
    key.reserve(prefix.size());
    for (int v : prefix)
        key.push_back(static_cast<char>(v));
    return key;
}

} // namespace

std::vector<int>
ctcBeamDecode(const Matrix& logits, std::size_t beam_width)
{
    if (beam_width == 0)
        panic("ctcBeamDecode: beam width must be positive");
    const Matrix lp = logSoftmaxRows(logits);
    const std::size_t n_cls = lp.cols();

    using Beam = std::pair<std::vector<int>, BeamScore>;
    std::vector<Beam> beams;
    beams.push_back({{}, {0.0f, kNegInf}});

    for (std::size_t t = 0; t < lp.rows(); ++t) {
        const float* row = lp.rowPtr(t);
        std::unordered_map<std::string, Beam> next;
        auto merge = [&](const std::vector<int>& prefix, float p_blank,
                         float p_label) {
            auto [it, inserted] = next.try_emplace(prefixKey(prefix));
            if (inserted)
                it->second.first = prefix;
            it->second.second.pBlank = logAdd(it->second.second.pBlank,
                                              p_blank);
            it->second.second.pLabel = logAdd(it->second.second.pLabel,
                                              p_label);
        };

        for (const auto& [prefix, score] : beams) {
            const float p_total = score.total();
            // Extend with blank: prefix unchanged.
            merge(prefix, p_total + row[kBlank], kNegInf);
            for (std::size_t k = 1; k < n_cls; ++k) {
                const int label = static_cast<int>(k);
                const float pk = row[k];
                if (!prefix.empty() && prefix.back() == label) {
                    // Same symbol: repeat within prefix (no growth) only
                    // from the label-ending mass...
                    merge(prefix, kNegInf, score.pLabel + pk);
                    // ...or grow after an intervening blank.
                    std::vector<int> grown = prefix;
                    grown.push_back(label);
                    merge(grown, kNegInf, score.pBlank + pk);
                } else {
                    std::vector<int> grown = prefix;
                    grown.push_back(label);
                    merge(grown, kNegInf, p_total + pk);
                }
            }
        }

        beams.clear();
        beams.reserve(next.size());
        for (auto& [key, beam] : next)
            beams.push_back(std::move(beam));
        std::sort(beams.begin(), beams.end(),
                  [](const Beam& a, const Beam& b) {
                      return a.second.total() > b.second.total();
                  });
        if (beams.size() > beam_width)
            beams.resize(beam_width);
    }

    return beams.empty() ? std::vector<int>{} : beams.front().first;
}

} // namespace swordfish::nn
