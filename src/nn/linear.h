/**
 * @file
 * Fully-connected layer Y = X * W^T + b executed through the VmmBackend.
 */

#ifndef SWORDFISH_NN_LINEAR_H
#define SWORDFISH_NN_LINEAR_H

#include <string>

#include "nn/module.h"

namespace swordfish::nn {

/** Affine layer over the channel dimension of a [T x in] sequence. */
class Linear : public Module
{
  public:
    /**
     * @param name stable layer name (prefix of its parameter names)
     * @param in   input feature count
     * @param out  output feature count
     * @param rng  initializer stream
     */
    Linear(std::string name, std::size_t in, std::size_t out, Rng& rng);

    Matrix forward(const Matrix& x) override;
    Matrix backward(const Matrix& dy) override;
    void forwardBatch(SequenceBatch& batch) override;

    std::vector<Parameter*>
    parameters() override
    {
        return {&weight_, &bias_};
    }

    std::unique_ptr<Module> clone() const override;
    std::string describe() const override;

    std::size_t
    outChannels(std::size_t) const override
    {
        return weight_.value.rows();
    }

    std::size_t inFeatures() const { return weight_.value.cols(); }
    std::size_t outFeatures() const { return weight_.value.rows(); }

    Parameter& weight() { return weight_; }
    Parameter& bias() { return bias_; }
    const Parameter& weight() const { return weight_; }

  private:
    std::string name_;
    Parameter weight_; ///< out x in
    Parameter bias_;   ///< 1 x out
    Matrix input_;     ///< cached forward input
};

} // namespace swordfish::nn

#endif // SWORDFISH_NN_LINEAR_H
