#include "module.h"

#include <cmath>

namespace swordfish::nn {

VmmBackend&
idealBackend()
{
    static IdealVmmBackend backend;
    return backend;
}

void
xavierInit(Matrix& w, std::size_t fan_in, std::size_t fan_out, Rng& rng)
{
    const float bound = std::sqrt(6.0f
        / static_cast<float>(fan_in + fan_out));
    for (float& v : w.raw())
        v = static_cast<float>(rng.uniform(-bound, bound));
}

} // namespace swordfish::nn
