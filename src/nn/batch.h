/**
 * @file
 * SequenceBatch: several independent time-major sequences ("lanes") stacked
 * row-wise into one matrix so the whole group can flow through the network
 * as a single operand.
 *
 * Lanes keep their identity through the stack: `offsets` records each
 * lane's row range and `streams` carries the per-lane noise-stream id (the
 * read index) that non-ideal backends use to reproduce, bitwise, the
 * conversion noise the lane would have seen on the serial path.
 */

#ifndef SWORDFISH_NN_BATCH_H
#define SWORDFISH_NN_BATCH_H

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/lanes.h"
#include "tensor/matrix.h"

namespace swordfish::nn {

using swordfish::BatchLayout;
using swordfish::LaneSpan;
using swordfish::Matrix;

/** A group of stacked sequences, one lane per read/chunk. */
struct SequenceBatch
{
    Matrix data;                        ///< [sum(T_i) x C] stacked rows
    std::vector<std::size_t> offsets;   ///< lane L owns rows [offsets[L], offsets[L+1])
    std::vector<std::uint64_t> streams; ///< per-lane noise stream ids

    std::size_t laneCount() const { return streams.size(); }

    std::size_t laneOffset(std::size_t lane) const { return offsets[lane]; }

    std::size_t
    laneRows(std::size_t lane) const
    {
        return offsets[lane + 1] - offsets[lane];
    }

    /** Copy of one lane's rows as a standalone matrix. */
    Matrix
    laneMatrix(std::size_t lane) const
    {
        const std::size_t rows = laneRows(lane);
        Matrix out(rows, data.cols());
        const float* src = data.raw().data() + laneOffset(lane) * data.cols();
        std::copy(src, src + rows * data.cols(), out.raw().begin());
        return out;
    }

    /** Stacking order descriptor for backend batched calls. */
    BatchLayout
    layout() const
    {
        BatchLayout l;
        l.reserve(laneCount());
        for (std::size_t i = 0; i < laneCount(); ++i)
            l.push_back({i, laneRows(i)});
        return l;
    }

    /** Replace the payload with per-lane matrices (lane count unchanged). */
    void
    assignLanes(const std::vector<Matrix>& lanes)
    {
        offsets.assign(1, 0);
        std::size_t cols = lanes.empty() ? 0 : lanes.front().cols();
        for (const Matrix& m : lanes) {
            if (m.cols() != cols)
                panic("SequenceBatch: lane width mismatch (", m.cols(),
                      " vs ", cols, ")");
            offsets.push_back(offsets.back() + m.rows());
        }
        data.resize(offsets.back(), cols);
        for (std::size_t i = 0; i < lanes.size(); ++i) {
            float* dst = data.raw().data() + offsets[i] * cols;
            std::copy(lanes[i].raw().begin(), lanes[i].raw().end(), dst);
        }
    }

    /** Build a batch by stacking per-lane matrices. */
    static SequenceBatch
    fromLanes(const std::vector<Matrix>& lanes,
              std::vector<std::uint64_t> lane_streams)
    {
        SequenceBatch batch;
        batch.streams = std::move(lane_streams);
        batch.assignLanes(lanes);
        return batch;
    }
};

} // namespace swordfish::nn

#endif // SWORDFISH_NN_BATCH_H
