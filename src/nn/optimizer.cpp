#include "optimizer.h"

#include <cmath>

#include "util/logging.h"

namespace swordfish::nn {

Adam::Adam(std::vector<Parameter*> params, AdamConfig config)
    : params_(std::move(params)), config_(config)
{
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    masks_.resize(params_.size());
    for (const Parameter* p : params_) {
        m_.emplace_back(p->size(), 0.0f);
        v_.emplace_back(p->size(), 0.0f);
    }
}

void
Adam::setMask(std::size_t param_index, std::vector<std::uint8_t> mask)
{
    if (param_index >= params_.size())
        panic("Adam::setMask: parameter index out of range");
    if (!mask.empty() && mask.size() != params_[param_index]->size())
        panic("Adam::setMask: mask size mismatch");
    masks_[param_index] = std::move(mask);
}

void
Adam::step()
{
    ++stepCount_;
    const float bc1 = 1.0f - std::pow(config_.beta1,
                                      static_cast<float>(stepCount_));
    const float bc2 = 1.0f - std::pow(config_.beta2,
                                      static_cast<float>(stepCount_));
    for (std::size_t i = 0; i < params_.size(); ++i) {
        Parameter& p = *params_[i];
        auto& m = m_[i];
        auto& v = v_[i];
        const auto& mask = masks_[i];
        float* w = p.value.data();
        float* g = p.grad.data();
        for (std::size_t j = 0; j < p.size(); ++j) {
            if (!mask.empty() && mask[j] == 0) {
                g[j] = 0.0f;
                continue;
            }
            m[j] = config_.beta1 * m[j] + (1.0f - config_.beta1) * g[j];
            v[j] = config_.beta2 * v[j] + (1.0f - config_.beta2)
                * g[j] * g[j];
            const float mhat = m[j] / bc1;
            const float vhat = v[j] / bc2;
            w[j] -= config_.lr
                * (mhat / (std::sqrt(vhat) + config_.eps)
                   + config_.weightDecay * w[j]);
            g[j] = 0.0f;
        }
    }
}

float
clipGradNorm(const std::vector<Parameter*>& params, float max_norm)
{
    double sq = 0.0;
    for (const Parameter* p : params)
        for (float g : p->grad.raw())
            sq += static_cast<double>(g) * g;
    const float norm = static_cast<float>(std::sqrt(sq));
    if (norm > max_norm && norm > 0.0f) {
        const float scale = max_norm / norm;
        for (Parameter* p : params)
            for (float& g : p->grad.raw())
                g *= scale;
    }
    return norm;
}

} // namespace swordfish::nn
