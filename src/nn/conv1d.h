/**
 * @file
 * 1-D convolution over the time axis, lowered to a VMM via im2col.
 *
 * This lowering is not just an implementation convenience: it is exactly how
 * PUMA (and every crossbar accelerator) executes convolutions, so routing the
 * lowered matmul through the VmmBackend gives the crossbar simulator the
 * same operand shapes the hardware would see.
 */

#ifndef SWORDFISH_NN_CONV1D_H
#define SWORDFISH_NN_CONV1D_H

#include <string>

#include "nn/module.h"

namespace swordfish::nn {

/**
 * Valid (no padding) strided 1-D convolution.
 *
 * Input [T x Cin] -> output [T' x Cout] with T' = (T - k)/stride + 1.
 */
class Conv1d : public Module
{
  public:
    Conv1d(std::string name, std::size_t in_channels,
           std::size_t out_channels, std::size_t kernel, std::size_t stride,
           Rng& rng);

    Matrix forward(const Matrix& x) override;
    Matrix backward(const Matrix& dy) override;
    void forwardBatch(SequenceBatch& batch) override;

    std::vector<Parameter*>
    parameters() override
    {
        return {&weight_, &bias_};
    }

    std::unique_ptr<Module> clone() const override;
    std::string describe() const override;

    std::size_t
    outChannels(std::size_t) const override
    {
        return weight_.value.rows();
    }

    std::size_t strideFactor() const override { return stride_; }

    std::size_t kernel() const { return kernel_; }
    std::size_t stride() const { return stride_; }
    std::size_t inChannels() const { return inChannels_; }
    Parameter& weight() { return weight_; }

    /** Output timesteps for a given input length (0 if too short). */
    std::size_t
    outSteps(std::size_t in_steps) const
    {
        return in_steps < kernel_ ? 0 : (in_steps - kernel_) / stride_ + 1;
    }

  private:
    /** Expand input windows into rows of the lowered matrix. */
    Matrix im2col(const Matrix& x) const;

    std::string name_;
    std::size_t inChannels_;
    std::size_t kernel_;
    std::size_t stride_;
    Parameter weight_; ///< Cout x (k * Cin)
    Parameter bias_;   ///< 1 x Cout
    Matrix colCache_;  ///< cached im2col(x) for backward
    std::size_t inSteps_ = 0;
};

} // namespace swordfish::nn

#endif // SWORDFISH_NN_CONV1D_H
