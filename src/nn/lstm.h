/**
 * @file
 * Unidirectional LSTM layer with full backpropagation-through-time.
 *
 * BonitoLite stacks these with alternating directions (reverse flag), the
 * same trick Bonito's LSTM encoder uses instead of true bidirectionality.
 * Both the input projection (one big VMM over all timesteps) and the
 * per-step recurrent projection go through the VmmBackend, because on the
 * accelerator both weight matrices live in crossbars.
 */

#ifndef SWORDFISH_NN_LSTM_H
#define SWORDFISH_NN_LSTM_H

#include <string>
#include <vector>

#include "nn/module.h"

namespace swordfish::nn {

/** Single-direction LSTM: input [T x I] to hidden-state sequence [T x H]. */
class Lstm : public Module
{
  public:
    /**
     * @param name    layer name prefix
     * @param in      input feature count
     * @param hidden  hidden state size
     * @param reverse process the sequence back-to-front when true
     * @param rng     initializer stream
     */
    Lstm(std::string name, std::size_t in, std::size_t hidden, bool reverse,
         Rng& rng);

    Matrix forward(const Matrix& x) override;
    Matrix backward(const Matrix& dy) override;

    /**
     * Batched inference: the input projection runs as one stacked VMM and
     * each timestep's recurrent projection gathers the still-active lanes'
     * hidden states into a single [B x H] operand — one backend call per
     * step for the whole group instead of one per lane. Lanes retire as
     * their sequences end; no backward caches are written.
     */
    void forwardBatch(SequenceBatch& batch) override;

    std::vector<Parameter*>
    parameters() override
    {
        return {&wih_, &whh_, &bias_};
    }

    std::unique_ptr<Module> clone() const override;
    std::string describe() const override;

    std::size_t outChannels(std::size_t) const override { return hidden_; }

    std::size_t hiddenSize() const { return hidden_; }
    std::size_t inFeatures() const { return in_; }
    bool isReverse() const { return reverse_; }

    Parameter& inputWeight() { return wih_; }
    Parameter& recurrentWeight() { return whh_; }

  private:
    /** Flip a sequence matrix along the time axis. */
    static Matrix timeReversed(const Matrix& m);

    std::string name_;
    std::size_t in_;
    std::size_t hidden_;
    bool reverse_;

    Parameter wih_;  ///< 4H x I, gate order [i, f, g, o]
    Parameter whh_;  ///< 4H x H
    Parameter bias_; ///< 1 x 4H

    // Forward caches (time-forward orientation, post-reversal).
    Matrix input_;   ///< [T x I]
    Matrix gates_;   ///< [T x 4H] post-nonlinearity gate values
    Matrix cells_;   ///< [T x H] cell states
    Matrix tanhC_;   ///< [T x H] tanh(cell)
    Matrix hidden_states_; ///< [T x H]
};

} // namespace swordfish::nn

#endif // SWORDFISH_NN_LSTM_H
