/**
 * @file
 * Scalar activation functions and their derivatives, plus elementwise
 * activation Modules. The set matches what BonitoLite needs: SiLU after
 * the convolution (as in Bonito's encoder), tanh/sigmoid inside the LSTM.
 */

#ifndef SWORDFISH_NN_ACTIVATIONS_H
#define SWORDFISH_NN_ACTIVATIONS_H

#include <cmath>

#include "nn/module.h"
#include "tensor/kernels.h"

namespace swordfish::nn {

/** Numerically-stable logistic sigmoid. */
inline float
sigmoidf(float x)
{
    if (x >= 0.0f) {
        const float z = std::exp(-x);
        return 1.0f / (1.0f + z);
    }
    const float z = std::exp(x);
    return z / (1.0f + z);
}

/**
 * Kernel-layer sigmoid/tanh used by the fused LSTM gate block
 * (kernels::lstmGateBlock). These are the polynomial approximations whose
 * scalar and AVX2 forms are bitwise-identical; the gate block is the only
 * consumer — the SiLU/Tanh Modules below keep libm so their training-path
 * numerics are untouched by the SIMD layer.
 */
inline float
sigmoidApprox(float x)
{
    return kernels::sigmoidApproxf(x);
}

inline float
tanhApprox(float x)
{
    return kernels::tanhApproxf(x);
}

/** Derivative of sigmoid given its output s. */
inline float
sigmoidGradFromOut(float s)
{
    return s * (1.0f - s);
}

/** Derivative of tanh given its output t. */
inline float
tanhGradFromOut(float t)
{
    return 1.0f - t * t;
}

/** SiLU (swish): x * sigmoid(x). */
inline float
siluf(float x)
{
    return x * sigmoidf(x);
}

/** Derivative of SiLU w.r.t. x. */
inline float
siluGrad(float x)
{
    const float s = sigmoidf(x);
    return s * (1.0f + x * (1.0f - s));
}

/** Elementwise SiLU layer. */
class SiLU : public Module
{
  public:
    Matrix
    forward(const Matrix& x) override
    {
        input_ = x;
        Matrix y = x;
        for (float& v : y.raw())
            v = siluf(v);
        backend().onActivations(y);
        return y;
    }

    void
    forwardBatch(SequenceBatch& batch) override
    {
        for (float& v : batch.data.raw())
            v = siluf(v);
        for (std::size_t l = 0; l < batch.laneCount(); ++l)
            backend().onActivationsRows(batch.data, batch.laneOffset(l),
                                        batch.laneOffset(l)
                                            + batch.laneRows(l));
    }

    Matrix
    backward(const Matrix& dy) override
    {
        Matrix dx = dy;
        for (std::size_t i = 0; i < dx.raw().size(); ++i)
            dx.raw()[i] *= siluGrad(input_.raw()[i]);
        return dx;
    }

    std::unique_ptr<Module>
    clone() const override
    {
        return std::make_unique<SiLU>();
    }

    std::string describe() const override { return "SiLU"; }

    std::size_t
    outChannels(std::size_t in_channels) const override
    {
        return in_channels;
    }

  private:
    Matrix input_;
};

/** Elementwise tanh layer. */
class Tanh : public Module
{
  public:
    Matrix
    forward(const Matrix& x) override
    {
        output_ = x;
        for (float& v : output_.raw())
            v = std::tanh(v);
        Matrix y = output_;
        backend().onActivations(y);
        return y;
    }

    void
    forwardBatch(SequenceBatch& batch) override
    {
        for (float& v : batch.data.raw())
            v = std::tanh(v);
        for (std::size_t l = 0; l < batch.laneCount(); ++l)
            backend().onActivationsRows(batch.data, batch.laneOffset(l),
                                        batch.laneOffset(l)
                                            + batch.laneRows(l));
    }

    Matrix
    backward(const Matrix& dy) override
    {
        Matrix dx = dy;
        for (std::size_t i = 0; i < dx.raw().size(); ++i)
            dx.raw()[i] *= tanhGradFromOut(output_.raw()[i]);
        return dx;
    }

    std::unique_ptr<Module>
    clone() const override
    {
        return std::make_unique<Tanh>();
    }

    std::string describe() const override { return "Tanh"; }

    std::size_t
    outChannels(std::size_t in_channels) const override
    {
        return in_channels;
    }

  private:
    Matrix output_;
};

} // namespace swordfish::nn

#endif // SWORDFISH_NN_ACTIVATIONS_H
