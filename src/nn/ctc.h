/**
 * @file
 * Connectionist Temporal Classification: loss (forward-backward algorithm)
 * with analytic gradients, greedy decoding, and prefix beam-search decoding.
 *
 * This is the training objective and decoder of CTC-flavoured Bonito: the
 * network emits per-frame logits over {blank, A, C, G, T} and CTC aligns
 * them to the reference base string.
 */

#ifndef SWORDFISH_NN_CTC_H
#define SWORDFISH_NN_CTC_H

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace swordfish::nn {

using swordfish::Matrix;

/** Row-wise log-softmax of a logits matrix. */
Matrix logSoftmaxRows(const Matrix& logits);

/** Result of a CTC loss evaluation. */
struct CtcResult
{
    double loss = 0.0;     ///< negative log likelihood
    bool feasible = true;  ///< false when T is too short for the target
    Matrix dLogits;        ///< gradient w.r.t. the *logits* (not log-probs)
};

/**
 * CTC negative log-likelihood and gradient.
 *
 * @param logits  [T x K] unnormalized scores; class 0 is blank
 * @param target  label sequence with values in [1, K-1]
 * @return loss, feasibility flag and dL/dlogits
 */
CtcResult ctcLoss(const Matrix& logits, const std::vector<int>& target);

/**
 * Greedy (best-path) CTC decode: per-frame argmax, collapse repeats,
 * remove blanks.
 */
std::vector<int> ctcGreedyDecode(const Matrix& logits);

/**
 * Prefix beam-search CTC decode.
 *
 * @param logits     [T x K] scores (softmaxed internally)
 * @param beam_width number of prefixes kept per frame
 */
std::vector<int> ctcBeamDecode(const Matrix& logits, std::size_t beam_width);

} // namespace swordfish::nn

#endif // SWORDFISH_NN_CTC_H
