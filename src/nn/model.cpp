#include "model.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/serialize.h"

namespace swordfish::nn {

void
SequenceModel::save(const std::string& path)
{
    BinaryWriter writer(path);
    auto params = parameters();
    writer.putU64(params.size());
    for (const Parameter* p : params) {
        writer.putString(p->name);
        writer.putU64(p->value.rows());
        writer.putU64(p->value.cols());
        writer.putFloats(p->value.raw());
    }
    if (!writer.good())
        fatal("SequenceModel::save: write failed for ", path);
}

bool
SequenceModel::load(const std::string& path)
{
    BinaryReader reader(path);
    if (!reader.ok())
        return false;

    std::unordered_map<std::string, Parameter*> by_name;
    for (Parameter* p : parameters())
        by_name[p->name] = p;

    const std::uint64_t count = reader.getU64();
    if (!reader.ok() || count != by_name.size())
        return false;
    // Stage everything, commit only after the whole file validates: a
    // corrupt artifact must not leave the model half-loaded.
    std::vector<std::pair<Parameter*, std::vector<float>>> staged;
    staged.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::string name = reader.getString();
        const std::uint64_t rows = reader.getU64();
        const std::uint64_t cols = reader.getU64();
        std::vector<float> data = reader.getFloats();
        if (!reader.ok())
            return false;
        auto it = by_name.find(name);
        if (it == by_name.end()) {
            warn("SequenceModel::load: unknown parameter ", name);
            return false;
        }
        Parameter& p = *it->second;
        if (p.value.rows() != rows || p.value.cols() != cols
            || data.size() != rows * cols) {
            warn("SequenceModel::load: shape mismatch for ", name);
            return false;
        }
        staged.emplace_back(&p, std::move(data));
    }
    for (auto& [param, data] : staged)
        param->value.raw().assign(data.begin(), data.end());
    return true;
}

} // namespace swordfish::nn
