#include "linear.h"

namespace swordfish::nn {

Linear::Linear(std::string name, std::size_t in, std::size_t out, Rng& rng)
    : name_(std::move(name)),
      weight_(name_ + ".w", out, in),
      bias_(name_ + ".b", 1, out)
{
    xavierInit(weight_.value, in, out, rng);
}

Matrix
Linear::forward(const Matrix& x)
{
    input_ = x;
    Matrix y;
    backend().matmul(weight_.name, weight_.value, x, y);
    addRowBias(y, bias_.value.raw());
    return y;
}

void
Linear::forwardBatch(SequenceBatch& batch)
{
    // Row-parallel layer: one batched VMM over the stacked lanes; the
    // layout only matters for per-lane input scaling and noise streams.
    Matrix y;
    backend().matmulBatched(weight_.name, weight_.value, batch.data, y,
                            batch.layout());
    addRowBias(y, bias_.value.raw());
    batch.data = std::move(y);
}

Matrix
Linear::backward(const Matrix& dy)
{
    // dW = dY^T * X ; db = column sums of dY ; dX = dY * W.
    gemmAT(dy, input_, weight_.grad, /*accumulate=*/true);
    for (std::size_t t = 0; t < dy.rows(); ++t)
        for (std::size_t c = 0; c < dy.cols(); ++c)
            bias_.grad(0, c) += dy(t, c);
    Matrix dx;
    gemm(dy, weight_.value, dx);
    return dx;
}

std::unique_ptr<Module>
Linear::clone() const
{
    auto copy = std::make_unique<Linear>(*this);
    copy->input_ = Matrix();
    copy->zeroGrad();
    copy->setBackend(nullptr);
    return copy;
}

std::string
Linear::describe() const
{
    return "Linear(" + std::to_string(inFeatures()) + " -> "
        + std::to_string(outFeatures()) + ")";
}

} // namespace swordfish::nn
