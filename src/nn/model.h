/**
 * @file
 * Sequential container of Modules with whole-network forward/backward,
 * cloning (for the KD teacher/student split), serialization, and backend
 * installation.
 */

#ifndef SWORDFISH_NN_MODEL_H
#define SWORDFISH_NN_MODEL_H

#include <memory>
#include <string>
#include <vector>

#include "nn/module.h"

namespace swordfish::nn {

/** A feed-forward stack of layers applied in order. */
class SequenceModel
{
  public:
    SequenceModel() = default;
    SequenceModel(const SequenceModel& other) { *this = other; }

    SequenceModel&
    operator=(const SequenceModel& other)
    {
        if (this != &other) {
            layers_.clear();
            for (const auto& layer : other.layers_)
                layers_.push_back(layer->clone());
        }
        return *this;
    }

    SequenceModel(SequenceModel&&) = default;
    SequenceModel& operator=(SequenceModel&&) = default;

    /** Append a layer; returns a reference for chaining. */
    SequenceModel&
    add(std::unique_ptr<Module> layer)
    {
        layers_.push_back(std::move(layer));
        return *this;
    }

    /** Typed in-place construction of a layer. */
    template <typename LayerT, typename... Args>
    LayerT&
    emplace(Args&&... args)
    {
        auto layer = std::make_unique<LayerT>(std::forward<Args>(args)...);
        LayerT& ref = *layer;
        layers_.push_back(std::move(layer));
        return ref;
    }

    /** Run the full forward pass. */
    Matrix
    forward(const Matrix& x)
    {
        Matrix h = x;
        for (auto& layer : layers_)
            h = layer->forward(h);
        return h;
    }

    /**
     * Batched forward pass over a group of stacked lanes (inference only).
     * Opens one noise stream per lane on the backend, runs every layer's
     * batched path, and closes the streams; per-lane outputs are
     * bitwise-identical to beginRead(stream) + forward(lane) per lane.
     */
    void
    forwardBatch(SequenceBatch& batch)
    {
        backend().beginBatch(batch.streams);
        for (auto& layer : layers_)
            layer->forwardBatch(batch);
        backend().endBatch();
    }

    /** Run the full backward pass from the output gradient. */
    Matrix
    backward(const Matrix& dy)
    {
        Matrix g = dy;
        for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
            g = (*it)->backward(g);
        return g;
    }

    /** Aggregate all trainable parameters, in layer order. */
    std::vector<Parameter*>
    parameters()
    {
        std::vector<Parameter*> out;
        for (auto& layer : layers_)
            for (Parameter* p : layer->parameters())
                out.push_back(p);
        return out;
    }

    /** Zero all parameter gradients. */
    void
    zeroGrad()
    {
        for (auto& layer : layers_)
            layer->zeroGrad();
    }

    /** Install a VMM backend on every layer (nullptr restores ideal). */
    void
    setBackend(VmmBackend* backend)
    {
        for (auto& layer : layers_)
            layer->setBackend(backend);
    }

    /** The installed VMM backend (the ideal one when none was set). */
    VmmBackend&
    backend() const
    {
        return layers_.empty() ? idealBackend() : layers_.front()->backend();
    }

    /** Announce the per-read noise stream to the backend (see VmmBackend). */
    void
    beginRead(std::uint64_t read_stream)
    {
        backend().beginRead(read_stream);
    }

    /**
     * Offer every parameter to the backend's ahead-of-time compile hook
     * and seal the result (see VmmBackend::prepareWeight). The evaluation
     * entry points call this before the first read; it is idempotent, and
     * a no-op for backends without per-weight setup.
     */
    void
    compileBackend()
    {
        VmmBackend& b = backend();
        for (Parameter* p : parameters())
            b.prepareWeight(p->name, p->value);
        b.finishCompile();
    }

    std::size_t layerCount() const { return layers_.size(); }
    Module& layer(std::size_t i) { return *layers_[i]; }
    const Module& layer(std::size_t i) const { return *layers_[i]; }

    /** Total downsampling factor (product of layer stride factors). */
    std::size_t
    strideFactor() const
    {
        std::size_t f = 1;
        for (const auto& layer : layers_)
            f *= layer->strideFactor();
        return f;
    }

    /** Total parameter count. */
    std::size_t
    parameterCount()
    {
        std::size_t n = 0;
        for (Parameter* p : parameters())
            n += p->size();
        return n;
    }

    /** Multi-line architecture description. */
    std::string
    describe() const
    {
        std::string out;
        for (const auto& layer : layers_)
            out += layer->describe() + "\n";
        return out;
    }

    /** Write all parameters (by name) to a binary file. */
    void save(const std::string& path);

    /**
     * Load parameters by name into the already-constructed architecture.
     * @return false when the file is missing/corrupt or any name/shape
     *         does not match.
     */
    bool load(const std::string& path);

  private:
    std::vector<std::unique_ptr<Module>> layers_;
};

} // namespace swordfish::nn

#endif // SWORDFISH_NN_MODEL_H
