/**
 * @file
 * Adam optimizer and gradient utilities for training BonitoLite and for the
 * Accuracy Enhancer's retraining passes (VAT / KD / RSA online).
 */

#ifndef SWORDFISH_NN_OPTIMIZER_H
#define SWORDFISH_NN_OPTIMIZER_H

#include <cstddef>
#include <vector>

#include "nn/module.h"

namespace swordfish::nn {

/** Adam hyperparameters. */
struct AdamConfig
{
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weightDecay = 0.0f;
};

/**
 * Adam with decoupled weight decay, operating on a fixed parameter list.
 *
 * Optionally restricted to a boolean mask per parameter element — this is
 * how RSA online retraining updates only the SRAM-resident weights
 * (paper Section 3.4.4 step 3).
 */
class Adam
{
  public:
    Adam(std::vector<Parameter*> params, AdamConfig config);

    /** Apply one update from the accumulated gradients, then zero them. */
    void step();

    /**
     * Restrict updates of parameter p (by list index) to elements where
     * mask is true. An empty mask (default) updates everything.
     */
    void setMask(std::size_t param_index, std::vector<std::uint8_t> mask);

    /** Scale the learning rate in place (for simple schedules). */
    void scaleLr(float factor) { config_.lr *= factor; }

    float lr() const { return config_.lr; }
    const std::vector<Parameter*>& params() const { return params_; }

  private:
    std::vector<Parameter*> params_;
    AdamConfig config_;
    std::vector<std::vector<float>> m_;
    std::vector<std::vector<float>> v_;
    std::vector<std::vector<std::uint8_t>> masks_;
    long stepCount_ = 0;
};

/** Clip gradients to a maximum global L2 norm; returns the pre-clip norm. */
float clipGradNorm(const std::vector<Parameter*>& params, float max_norm);

} // namespace swordfish::nn

#endif // SWORDFISH_NN_OPTIMIZER_H
