#include "metrics.h"

#include "env.h"
#include "sanitize.h"
#include "serialize.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>

namespace swordfish {

namespace {

/**
 * Shard cells are written by exactly one thread and read concurrently by
 * snapshot(), so every field is a relaxed atomic updated load/store (no
 * CAS needed with a single writer).
 */
struct CounterCell
{
    std::atomic<std::uint64_t> value{0};
};

struct HistCell
{
    explicit HistCell(std::size_t n_buckets) : counts(n_buckets) {}
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};
};

struct SpanCell
{
    std::atomic<std::uint64_t> calls{0};
    std::atomic<double> seconds{0.0};
    std::atomic<double> maxSeconds{0.0};
};

void
appendJsonString(std::string& out, const std::string& s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendJsonDouble(std::string& out, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

} // namespace

/** One thread's private accumulation cells, one slot vector per kind. */
struct MetricsThreadShard
{
    explicit MetricsThreadShard(MetricsRegistry* reg) : reg(reg) {}
    ~MetricsThreadShard();

    MetricsRegistry* reg;
    /** Guards slot-vector growth against concurrent snapshot readers; the
     *  owning thread's cell updates themselves are lock-free. */
    std::mutex mutex;
    std::vector<std::unique_ptr<CounterCell>> counters;
    std::vector<std::unique_ptr<HistCell>> hists;
    std::vector<std::unique_ptr<SpanCell>> spans;
};

struct MetricsRegistry::Impl
{
    mutable std::mutex mutex; ///< registrations, shard list, retired, gauges

    std::map<std::string, std::size_t> counterIds;
    std::map<std::string, std::size_t> gaugeIds;
    std::map<std::string, std::size_t> histIds;
    std::map<std::string, std::size_t> spanIds;
    std::vector<std::string> counterNames;
    std::vector<std::string> gaugeNames;
    std::vector<std::string> histNames;
    std::vector<std::string> spanNames;
    /** deque: Histogram handles keep pointers to the bound vectors. */
    std::deque<std::vector<double>> histBounds;

    std::deque<std::atomic<double>> gaugeCells;

    std::vector<MetricsThreadShard*> shards;

    /** Totals folded in from exited threads (guarded by `mutex`). */
    std::vector<std::uint64_t> retiredCounters;
    std::vector<HistogramSnapshot> retiredHists;
    std::vector<SpanSnapshot> retiredSpans;

    MetricsThreadShard& shard();
};

namespace {

thread_local std::unique_ptr<MetricsThreadShard> tls_shard;

} // namespace

MetricsThreadShard&
MetricsRegistry::Impl::shard()
{
    if (!tls_shard) {
        tls_shard = std::make_unique<MetricsThreadShard>(
            &MetricsRegistry::instance());
        std::lock_guard<std::mutex> lock(mutex);
        shards.push_back(tls_shard.get());
    }
    return *tls_shard;
}

MetricsThreadShard::~MetricsThreadShard()
{
    // Fold this thread's totals into the registry's retired aggregates so
    // metrics survive worker-thread exit (e.g. pool resizes). The registry
    // is leaked, so `reg` is always valid here.
    MetricsRegistry::Impl& impl = *reg->impl_;
    std::lock_guard<std::mutex> lock(impl.mutex);
    for (std::size_t i = 0; i < counters.size(); ++i) {
        if (counters[i])
            impl.retiredCounters[i] +=
                counters[i]->value.load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < hists.size(); ++i) {
        if (!hists[i])
            continue;
        const HistCell& c = *hists[i];
        HistogramSnapshot& r = impl.retiredHists[i];
        r.counts.resize(c.counts.size(), 0);
        for (std::size_t b = 0; b < c.counts.size(); ++b)
            r.counts[b] += c.counts[b].load(std::memory_order_relaxed);
        const std::uint64_t n = c.count.load(std::memory_order_relaxed);
        if (n > 0) {
            const double mn = c.min.load(std::memory_order_relaxed);
            const double mx = c.max.load(std::memory_order_relaxed);
            r.min = r.count == 0 ? mn : std::min(r.min, mn);
            r.max = r.count == 0 ? mx : std::max(r.max, mx);
        }
        r.count += n;
        r.sum += c.sum.load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < spans.size(); ++i) {
        if (!spans[i])
            continue;
        const SpanCell& c = *spans[i];
        SpanSnapshot& r = impl.retiredSpans[i];
        r.calls += c.calls.load(std::memory_order_relaxed);
        r.seconds += c.seconds.load(std::memory_order_relaxed);
        r.maxSeconds = std::max(
            r.maxSeconds, c.maxSeconds.load(std::memory_order_relaxed));
    }
    impl.shards.erase(
        std::remove(impl.shards.begin(), impl.shards.end(), this),
        impl.shards.end());
}

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry&
MetricsRegistry::instance()
{
    // Leaked singleton: worker-thread shard destructors and the atexit
    // dump below must be able to reach it at any point of shutdown.
    static MetricsRegistry* reg = [] {
        auto* r = new MetricsRegistry();
        leakIntentionally(r);
        std::atexit([] { writeMetricsIfConfigured(); });
        return r;
    }();
    return *reg;
}

MetricsRegistry&
metrics()
{
    return MetricsRegistry::instance();
}

Counter
MetricsRegistry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto [it, inserted] =
        impl_->counterIds.emplace(name, impl_->counterNames.size());
    if (inserted) {
        impl_->counterNames.push_back(name);
        impl_->retiredCounters.push_back(0);
    }
    return Counter(this, it->second);
}

Gauge
MetricsRegistry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto [it, inserted] =
        impl_->gaugeIds.emplace(name, impl_->gaugeNames.size());
    if (inserted) {
        impl_->gaugeNames.push_back(name);
        impl_->gaugeCells.emplace_back(0.0);
    }
    return Gauge(this, it->second);
}

Histogram
MetricsRegistry::histogram(const std::string& name,
                           std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto [it, inserted] =
        impl_->histIds.emplace(name, impl_->histNames.size());
    if (inserted) {
        impl_->histNames.push_back(name);
        std::sort(bounds.begin(), bounds.end());
        impl_->histBounds.push_back(std::move(bounds));
        HistogramSnapshot retired;
        retired.bounds = impl_->histBounds.back();
        retired.counts.assign(retired.bounds.size() + 1, 0);
        impl_->retiredHists.push_back(std::move(retired));
    }
    return Histogram(this, it->second, &impl_->histBounds[it->second]);
}

SpanStat
MetricsRegistry::span(const std::string& name)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto [it, inserted] =
        impl_->spanIds.emplace(name, impl_->spanNames.size());
    if (inserted) {
        impl_->spanNames.push_back(name);
        impl_->retiredSpans.emplace_back();
    }
    return SpanStat(this, it->second);
}

void
MetricsRegistry::counterAdd(std::size_t id, std::uint64_t n)
{
    MetricsThreadShard& s = impl_->shard();
    if (id >= s.counters.size() || !s.counters[id]) {
        std::lock_guard<std::mutex> lock(s.mutex);
        if (id >= s.counters.size())
            s.counters.resize(id + 1);
        s.counters[id] = std::make_unique<CounterCell>();
    }
    s.counters[id]->value.fetch_add(n, std::memory_order_relaxed);
}

void
MetricsRegistry::gaugeSet(std::size_t id, double v)
{
    impl_->gaugeCells[id].store(v, std::memory_order_relaxed);
}

void
MetricsRegistry::histObserve(std::size_t id,
                             const std::vector<double>& bounds, double v)
{
    MetricsThreadShard& s = impl_->shard();
    if (id >= s.hists.size() || !s.hists[id]) {
        std::lock_guard<std::mutex> lock(s.mutex);
        if (id >= s.hists.size())
            s.hists.resize(id + 1);
        s.hists[id] = std::make_unique<HistCell>(bounds.size() + 1);
    }
    HistCell& c = *s.hists[id];
    // Inclusive upper bounds (value <= bound), Prometheus-style: bucket i
    // counts values in (bounds[i-1], bounds[i]]; the last bucket overflows.
    const std::size_t b = static_cast<std::size_t>(
        std::lower_bound(bounds.begin(), bounds.end(), v)
        - bounds.begin());
    c.counts[b].fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t n = c.count.load(std::memory_order_relaxed);
    c.sum.store(c.sum.load(std::memory_order_relaxed) + v,
                std::memory_order_relaxed);
    if (n == 0 || v < c.min.load(std::memory_order_relaxed))
        c.min.store(v, std::memory_order_relaxed);
    if (n == 0 || v > c.max.load(std::memory_order_relaxed))
        c.max.store(v, std::memory_order_relaxed);
    c.count.store(n + 1, std::memory_order_relaxed);
}

void
MetricsRegistry::spanRecord(std::size_t id, double seconds)
{
    MetricsThreadShard& s = impl_->shard();
    if (id >= s.spans.size() || !s.spans[id]) {
        std::lock_guard<std::mutex> lock(s.mutex);
        if (id >= s.spans.size())
            s.spans.resize(id + 1);
        s.spans[id] = std::make_unique<SpanCell>();
    }
    SpanCell& c = *s.spans[id];
    c.calls.fetch_add(1, std::memory_order_relaxed);
    c.seconds.store(c.seconds.load(std::memory_order_relaxed) + seconds,
                    std::memory_order_relaxed);
    if (seconds > c.maxSeconds.load(std::memory_order_relaxed))
        c.maxSeconds.store(seconds, std::memory_order_relaxed);
}

void
Counter::add(std::uint64_t n) const
{
    reg_->counterAdd(id_, n);
}

void
Gauge::set(double v) const
{
    reg_->gaugeSet(id_, v);
}

void
Histogram::observe(double v) const
{
    reg_->histObserve(id_, *bounds_, v);
}

void
SpanStat::record(double seconds) const
{
    reg_->spanRecord(id_, seconds);
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(impl_->mutex);

    std::vector<std::uint64_t> counters = impl_->retiredCounters;
    std::vector<HistogramSnapshot> hists = impl_->retiredHists;
    std::vector<SpanSnapshot> spans = impl_->retiredSpans;

    for (MetricsThreadShard* shard : impl_->shards) {
        std::lock_guard<std::mutex> shard_lock(shard->mutex);
        for (std::size_t i = 0; i < shard->counters.size(); ++i) {
            if (shard->counters[i])
                counters[i] += shard->counters[i]->value.load(
                    std::memory_order_relaxed);
        }
        for (std::size_t i = 0; i < shard->hists.size(); ++i) {
            if (!shard->hists[i])
                continue;
            const HistCell& c = *shard->hists[i];
            HistogramSnapshot& r = hists[i];
            for (std::size_t b = 0; b < c.counts.size(); ++b)
                r.counts[b] +=
                    c.counts[b].load(std::memory_order_relaxed);
            const std::uint64_t n =
                c.count.load(std::memory_order_relaxed);
            if (n > 0) {
                const double mn = c.min.load(std::memory_order_relaxed);
                const double mx = c.max.load(std::memory_order_relaxed);
                r.min = r.count == 0 ? mn : std::min(r.min, mn);
                r.max = r.count == 0 ? mx : std::max(r.max, mx);
            }
            r.count += n;
            r.sum += c.sum.load(std::memory_order_relaxed);
        }
        for (std::size_t i = 0; i < shard->spans.size(); ++i) {
            if (!shard->spans[i])
                continue;
            const SpanCell& c = *shard->spans[i];
            SpanSnapshot& r = spans[i];
            r.calls += c.calls.load(std::memory_order_relaxed);
            r.seconds += c.seconds.load(std::memory_order_relaxed);
            r.maxSeconds = std::max(
                r.maxSeconds,
                c.maxSeconds.load(std::memory_order_relaxed));
        }
    }

    for (std::size_t i = 0; i < impl_->counterNames.size(); ++i)
        snap.counters[impl_->counterNames[i]] = counters[i];
    for (std::size_t i = 0; i < impl_->gaugeNames.size(); ++i)
        snap.gauges[impl_->gaugeNames[i]] =
            impl_->gaugeCells[i].load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < impl_->histNames.size(); ++i)
        snap.histograms[impl_->histNames[i]] = hists[i];
    for (std::size_t i = 0; i < impl_->spanNames.size(); ++i)
        snap.spans[impl_->spanNames[i]] = spans[i];
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (std::uint64_t& v : impl_->retiredCounters)
        v = 0;
    for (HistogramSnapshot& h : impl_->retiredHists) {
        std::fill(h.counts.begin(), h.counts.end(), 0);
        h.count = 0;
        h.sum = h.min = h.max = 0.0;
    }
    for (SpanSnapshot& s : impl_->retiredSpans)
        s = SpanSnapshot{};
    for (auto& g : impl_->gaugeCells)
        g.store(0.0, std::memory_order_relaxed);
    for (MetricsThreadShard* shard : impl_->shards) {
        std::lock_guard<std::mutex> shard_lock(shard->mutex);
        for (auto& c : shard->counters)
            if (c)
                c->value.store(0, std::memory_order_relaxed);
        for (auto& h : shard->hists) {
            if (!h)
                continue;
            for (auto& b : h->counts)
                b.store(0, std::memory_order_relaxed);
            h->count.store(0, std::memory_order_relaxed);
            h->sum.store(0.0, std::memory_order_relaxed);
            h->min.store(0.0, std::memory_order_relaxed);
            h->max.store(0.0, std::memory_order_relaxed);
        }
        for (auto& s : shard->spans) {
            if (!s)
                continue;
            s->calls.store(0, std::memory_order_relaxed);
            s->seconds.store(0.0, std::memory_order_relaxed);
            s->maxSeconds.store(0.0, std::memory_order_relaxed);
        }
    }
}

std::string
MetricsSnapshot::toJson() const
{
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : counters) {
        if (!first)
            out += ',';
        first = false;
        appendJsonString(out, name);
        out += ':';
        out += std::to_string(value);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : gauges) {
        if (!first)
            out += ',';
        first = false;
        appendJsonString(out, name);
        out += ':';
        appendJsonDouble(out, value);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : histograms) {
        if (!first)
            out += ',';
        first = false;
        appendJsonString(out, name);
        out += ":{\"bounds\":[";
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
            if (i > 0)
                out += ',';
            appendJsonDouble(out, h.bounds[i]);
        }
        out += "],\"counts\":[";
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            if (i > 0)
                out += ',';
            out += std::to_string(h.counts[i]);
        }
        out += "],\"count\":" + std::to_string(h.count) + ",\"sum\":";
        appendJsonDouble(out, h.sum);
        out += ",\"min\":";
        appendJsonDouble(out, h.min);
        out += ",\"max\":";
        appendJsonDouble(out, h.max);
        out += '}';
    }
    out += "},\"spans\":{";
    first = true;
    for (const auto& [name, s] : spans) {
        if (!first)
            out += ',';
        first = false;
        appendJsonString(out, name);
        out += ":{\"calls\":" + std::to_string(s.calls) + ",\"seconds\":";
        appendJsonDouble(out, s.seconds);
        out += ",\"max_seconds\":";
        appendJsonDouble(out, s.maxSeconds);
        out += '}';
    }
    // Record the runtime knobs that produced this snapshot so every
    // exported artifact is self-describing.
    out += "},\"config\":" + runtimeConfig().toJson();
    out += '}';
    return out;
}

bool
MetricsRegistry::writeJsonFile(const std::string& path) const
{
    // Atomic (temp + fsync + rename): a crash or signal mid-export never
    // leaves a truncated metrics file behind for a watcher to misparse.
    return atomicWriteFile(path, snapshot().toJson() + '\n');
}

bool
writeMetricsIfConfigured()
{
    // A live getenv() first: tests and tools may point the exporter at a
    // file after startup, which the read-once RuntimeConfig cannot see.
    const char* live = std::getenv(kMetricsOutEnv);
    std::string path = (live != nullptr) ? live : runtimeConfig().metricsOut;
    if (path.empty())
        return false;
    return metrics().writeJsonFile(path);
}

} // namespace swordfish
