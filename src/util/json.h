/**
 * @file
 * Minimal JSON value type, strict parser, and writer for the serializable
 * request surface (JobSpec / EvalRequest round-trips, the swordfishd wire
 * protocol, and config snapshots embedded in metrics output).
 *
 * Scope is deliberately small: UTF-8 pass-through strings (standard
 * escapes, \uXXXX decoded as a byte-wise code point below 0x80, else kept
 * escaped), 64-bit-exact integers (a number token without '.', 'e', 'E'
 * round-trips through int64/uint64 bit-exactly — JSON doubles alone would
 * corrupt seeds above 2^53), and objects that preserve insertion order so
 * dumps are deterministic and diffable.
 *
 * Parsing is strict and typed: one JsonError (kind + offset + message) per
 * failure, a depth bound against stack-smashing nesting, and no partial
 * out-state on failure — exactly the contract the fuzz-style wire-protocol
 * tests assert.
 */

#ifndef SWORDFISH_UTIL_JSON_H
#define SWORDFISH_UTIL_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace swordfish {

/** Why a JSON parse failed. */
enum class JsonFailure
{
    None,        ///< success
    Syntax,      ///< malformed token / structure
    Depth,       ///< nesting beyond the parser bound
    Number,      ///< unrepresentable numeric literal
    DuplicateKey,///< the same key twice in one object
    Trailing,    ///< valid value followed by non-whitespace garbage
};

/** Stable label for a failure kind. */
const char* jsonFailureName(JsonFailure failure);

/** A typed parse error: kind, byte offset, human-readable message. */
struct JsonError
{
    JsonFailure failure = JsonFailure::None;
    std::size_t offset = 0;
    std::string message;

    bool ok() const { return failure == JsonFailure::None; }
    explicit operator bool() const { return !ok(); } ///< true on *error*
};

/**
 * One JSON value. Numbers remember whether their token was integral, so
 * u64/i64 round-trip exactly; everything else degrades to double.
 */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    static JsonValue makeNull() { return JsonValue(); }
    static JsonValue of(bool b);
    static JsonValue of(double d);
    static JsonValue of(std::int64_t i);
    static JsonValue of(std::uint64_t u);
    static JsonValue of(std::string s);
    static JsonValue of(const char* s) { return of(std::string(s)); }
    static JsonValue array();
    static JsonValue object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** True when the number token was integral (no '.', no exponent). */
    bool isIntegral() const { return isNumber() && integral_; }

    bool asBool(bool fallback = false) const;
    double asDouble(double fallback = 0.0) const;
    std::int64_t asI64(std::int64_t fallback = 0) const;
    std::uint64_t asU64(std::uint64_t fallback = 0) const;
    const std::string& asString() const; ///< empty for non-strings

    // -- array access ------------------------------------------------------
    std::size_t size() const; ///< elements (array) or members (object)
    const JsonValue& at(std::size_t index) const; ///< null value if absent
    void push(JsonValue v);

    // -- object access (insertion-ordered) --------------------------------
    /** Member lookup; a process-wide null value when missing. */
    const JsonValue& get(const std::string& key) const;
    bool has(const std::string& key) const;
    void set(const std::string& key, JsonValue v); ///< insert or replace
    const std::vector<std::pair<std::string, JsonValue>>& members() const;

    /** Compact one-line dump (deterministic member order = insertion). */
    std::string dump() const;

    /**
     * Parse `text` into `out`. On failure returns the typed error and
     * leaves `out` untouched. `max_depth` bounds nesting.
     */
    static JsonError parse(const std::string& text, JsonValue& out,
                           std::size_t max_depth = 64);

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    bool integral_ = false;
    bool negative_ = false;    ///< integral token had a leading '-'
    double num_ = 0.0;
    std::uint64_t magnitude_ = 0; ///< |value| for integral tokens
    std::string str_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/** Escape a string for embedding in a JSON document (no quotes added). */
std::string jsonEscape(const std::string& s);

/**
 * Incremental object writer for hand-rolled one-line dumps (metrics
 * snapshots, wire responses) — keeps field order explicit and escaping in
 * one place without building a JsonValue tree.
 */
class JsonWriter
{
  public:
    JsonWriter() { out_ = "{"; }

    JsonWriter& field(const std::string& key, const std::string& value);
    JsonWriter& field(const std::string& key, const char* value);
    JsonWriter& field(const std::string& key, bool value);
    JsonWriter& field(const std::string& key, double value);
    JsonWriter& field(const std::string& key, std::int64_t value);
    JsonWriter& field(const std::string& key, std::uint64_t value);
    JsonWriter& field(const std::string& key, int value);
    JsonWriter& field(const std::string& key, unsigned value);
    /** Embed pre-rendered JSON (an object/array dump) verbatim. */
    JsonWriter& raw(const std::string& key, const std::string& json);

    /** Close the object and return the document. */
    std::string str() const { return out_ + "}"; }

  private:
    JsonWriter& key(const std::string& k);
    std::string out_;
    bool first_ = true;
};

} // namespace swordfish

#endif // SWORDFISH_UTIL_JSON_H
