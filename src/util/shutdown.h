/**
 * @file
 * Cooperative graceful-shutdown support for long-running evaluations.
 *
 * installShutdownHandler() arms SIGINT/SIGTERM to set a process-wide flag
 * instead of killing the process; the evaluation loops poll
 * shutdownRequested() at read-block boundaries, finish the in-flight
 * reads, flush metrics and the checkpoint, and return with
 * `interrupted = true`. A second signal exits immediately (the user
 * insists), so a hung run can still be killed with a double Ctrl-C.
 *
 * requestShutdown()/clearShutdownRequest() drive the same flag
 * programmatically — tests and drivers use them to exercise the
 * checkpoint/resume path without raising real signals.
 */

#ifndef SWORDFISH_UTIL_SHUTDOWN_H
#define SWORDFISH_UTIL_SHUTDOWN_H

namespace swordfish {

/**
 * Install the SIGINT/SIGTERM handlers (idempotent). Call early in drivers
 * that want kill-safe sweeps; libraries never install handlers themselves.
 */
void installShutdownHandler();

/** True once a shutdown was requested by signal or requestShutdown(). */
bool shutdownRequested();

/** Request a graceful shutdown programmatically. */
void requestShutdown();

/** Reset the flag (tests re-arm between scenarios). */
void clearShutdownRequest();

} // namespace swordfish

#endif // SWORDFISH_UTIL_SHUTDOWN_H
