/**
 * @file
 * Deterministic random number generation for Swordfish.
 *
 * Every stochastic component in the framework (signal simulation, device
 * variation, measurement-library sampling, training shuffles) draws from an
 * explicitly seeded Rng so that experiments are exactly reproducible. The
 * generator is xoshiro256** seeded via splitmix64, which is fast, has a
 * 2^256-1 period, and passes BigCrush.
 */

#ifndef SWORDFISH_UTIL_RNG_H
#define SWORDFISH_UTIL_RNG_H

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace swordfish {

/** Stateless splitmix64 step; used for seeding and hashing. */
constexpr std::uint64_t
splitmix64(std::uint64_t& state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Mix an arbitrary set of integers into a single 64-bit seed. */
inline std::uint64_t
hashSeed(std::initializer_list<std::uint64_t> parts)
{
    std::uint64_t state = 0x853c49e6748fea9bULL;
    std::uint64_t out = 0;
    for (std::uint64_t p : parts) {
        state ^= p + 0x9e3779b97f4a7c15ULL + (state << 6) + (state >> 2);
        out ^= splitmix64(state);
    }
    return out;
}

/**
 * Seedable xoshiro256** random number generator with the distributions the
 * framework needs (uniform, Gaussian, lognormal, integer ranges, shuffles).
 *
 * Satisfies UniformRandomBitGenerator so it can also feed <random>
 * distributions where convenient.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded through splitmix64). */
    explicit Rng(std::uint64_t seed = 0x5eedf15eULL)
    {
        reseed(seed);
    }

    /** Re-seed the generator in place. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t sm = seed;
        for (auto& word : state_)
            word = splitmix64(sm);
        hasCachedGauss_ = false;
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max()
    {
        return std::numeric_limits<result_type>::max();
    }

    /** Next raw 64-bit output. */
    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t
    next(std::uint64_t n)
    {
        // Lemire's nearly-divisionless bounded sampling.
        std::uint64_t x = operator()();
        __uint128_t m = static_cast<__uint128_t>(x) * n;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < n) {
            std::uint64_t threshold = (0 - n) % n;
            while (lo < threshold) {
                x = operator()();
                m = static_cast<__uint128_t>(x) * n;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            next(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Standard normal via Box-Muller with one-value cache. */
    double
    gauss()
    {
        if (hasCachedGauss_) {
            hasCachedGauss_ = false;
            return cachedGauss_;
        }
        double u1 = 0.0;
        while (u1 <= 0.0)
            u1 = uniform();
        const double u2 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * M_PI * u2;
        cachedGauss_ = r * std::sin(theta);
        hasCachedGauss_ = true;
        return r * std::cos(theta);
    }

    /** Normal with given mean and standard deviation. */
    double
    gauss(double mean, double stddev)
    {
        return mean + stddev * gauss();
    }

    /** Lognormal: exp(N(mu, sigma)). */
    double
    logNormal(double mu, double sigma)
    {
        return std::exp(gauss(mu, sigma));
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            const std::size_t j = next(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child generator (for parallel streams). */
    Rng
    split()
    {
        return Rng(operator()() ^ 0xa02bdbf7bb3c0a7ULL);
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
    bool hasCachedGauss_ = false;
    double cachedGauss_ = 0.0;
};

} // namespace swordfish

#endif // SWORDFISH_UTIL_RNG_H
