/**
 * @file
 * Environment-variable helpers shared by benches and examples.
 */

#ifndef SWORDFISH_UTIL_ENV_H
#define SWORDFISH_UTIL_ENV_H

#include <cstdlib>
#include <string>

namespace swordfish {

/** True when the named environment variable is set to a truthy value. */
inline bool
envFlag(const char* name)
{
    const char* v = std::getenv(name);
    if (v == nullptr)
        return false;
    const std::string s(v);
    return !(s.empty() || s == "0" || s == "false" || s == "off");
}

/** Integer environment variable with fallback. */
inline long
envLong(const char* name, long fallback)
{
    const char* v = std::getenv(name);
    if (v == nullptr)
        return fallback;
    char* end = nullptr;
    const long parsed = std::strtol(v, &end, 10);
    return (end == v) ? fallback : parsed;
}

/**
 * Fast-mode switch: benches shrink run counts / dataset sizes when
 * SWORDFISH_FAST=1 so the whole suite can be smoke-tested quickly.
 */
inline bool
fastMode()
{
    return envFlag("SWORDFISH_FAST");
}

} // namespace swordfish

#endif // SWORDFISH_UTIL_ENV_H
