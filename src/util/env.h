/**
 * @file
 * Environment-variable helpers and the consolidated runtime configuration.
 *
 * All process-wide SWORDFISH_* knobs are gathered into one RuntimeConfig
 * snapshot read once at first use; subsystems query runtimeConfig() instead
 * of scattering getenv() calls. The raw envFlag/envLong helpers remain for
 * bench-local knobs that are not part of the shared configuration surface.
 */

#ifndef SWORDFISH_UTIL_ENV_H
#define SWORDFISH_UTIL_ENV_H

#include <cstdlib>
#include <string>

namespace swordfish {

/** True when the named environment variable is set to a truthy value. */
inline bool
envFlag(const char* name)
{
    const char* v = std::getenv(name);
    if (v == nullptr)
        return false;
    const std::string s(v);
    return !(s.empty() || s == "0" || s == "false" || s == "off");
}

/** Integer environment variable with fallback. */
inline long
envLong(const char* name, long fallback)
{
    const char* v = std::getenv(name);
    if (v == nullptr)
        return fallback;
    char* end = nullptr;
    const long parsed = std::strtol(v, &end, 10);
    return (end == v) ? fallback : parsed;
}

/**
 * Process-wide runtime knobs, captured from the environment exactly once.
 *
 * Numeric fields use -1 as the "unset" sentinel so that explicit zeros
 * (e.g. SWORDFISH_THREADS=0 for a serial pool) stay distinguishable from
 * absent variables. Consumers that need a resolved value use the accessor
 * helpers below the raw fields.
 */
struct RuntimeConfig
{
    long threads = -1;       ///< SWORDFISH_THREADS; -1 = hardware concurrency
    long batch = -1;         ///< SWORDFISH_BATCH; -1 = 1 (no batching)
    bool fast = false;       ///< SWORDFISH_FAST
    long evalReads = -1;     ///< SWORDFISH_EVAL_READS; -1 = caller default
    long evalRuns = -1;      ///< SWORDFISH_EVAL_RUNS; -1 = caller default
    long retrainEpochs = -1; ///< SWORDFISH_RETRAIN_EPOCHS; -1 = caller default
    std::string metricsOut;  ///< SWORDFISH_METRICS_OUT; empty = no dump
    std::string artifacts;   ///< SWORDFISH_ARTIFACTS; empty = caller default
    std::string faults;      ///< SWORDFISH_FAULTS; empty = no injection
    std::string chaos;       ///< SWORDFISH_CHAOS; empty = no service chaos
    std::string refresh;     ///< SWORDFISH_REFRESH; empty = healing off
    std::string simd;        ///< SWORDFISH_SIMD; empty = auto-detect
    std::string noise;       ///< SWORDFISH_NOISE; empty = per-scenario presets

    /**
     * SWORDFISH_BACKEND: default execution-backend selector — mode token
     * ("interpreter" / "compiled") and/or family token ("digital",
     * "int8", "analytical", "measured"), separated by ':' when both are
     * given. Empty = compiled mode with the family derived per request.
     * Parsed by core::parseBackendSelector; EvalRequest::backend
     * overrides it per call.
     */
    std::string backend;

    /** Pool width: the env override, else hardware concurrency (min 1). */
    std::size_t poolThreads() const;

    /** Evaluation batch capacity: the env override, else 1. */
    std::size_t
    batchSize() const
    {
        return batch > 0 ? static_cast<std::size_t>(batch) : 1;
    }

    /** One-line JSON dump of the knobs (embedded in metrics snapshots). */
    std::string toJson() const;

    /** Capture a fresh snapshot from the current environment. */
    static RuntimeConfig fromEnvironment();
};

/**
 * The process-wide configuration snapshot, captured on first call.
 * Later environment mutations are intentionally not observed.
 */
const RuntimeConfig& runtimeConfig();

/**
 * Fast-mode switch: benches shrink run counts / dataset sizes when
 * SWORDFISH_FAST=1 so the whole suite can be smoke-tested quickly.
 */
inline bool
fastMode()
{
    return runtimeConfig().fast;
}

} // namespace swordfish

#endif // SWORDFISH_UTIL_ENV_H
