#include "shutdown.h"

#include <atomic>
#include <csignal>
#include <cstdlib>

namespace swordfish {

namespace {

std::atomic<bool> g_requested{false};
std::atomic<bool> g_installed{false};

// Only async-signal-safe operations are allowed here: one lock-free
// atomic exchange, and _Exit on the second signal.
void
onShutdownSignal(int sig)
{
    if (g_requested.exchange(true, std::memory_order_relaxed))
        std::_Exit(128 + sig);
}

} // namespace

void
installShutdownHandler()
{
    if (g_installed.exchange(true, std::memory_order_relaxed))
        return;
    std::signal(SIGINT, onShutdownSignal);
    std::signal(SIGTERM, onShutdownSignal);
}

bool
shutdownRequested()
{
    return g_requested.load(std::memory_order_relaxed);
}

void
requestShutdown()
{
    g_requested.store(true, std::memory_order_relaxed);
}

void
clearShutdownRequest()
{
    g_requested.store(false, std::memory_order_relaxed);
}

} // namespace swordfish
