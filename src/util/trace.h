/**
 * @file
 * RAII scoped timers that aggregate wall-time per stage into the metrics
 * registry (util/metrics.h).
 *
 * Usage at a hot call site — register once, then time each invocation:
 *
 *     static const SpanStat kVmmSpan = metrics().span("vmm");
 *     TraceSpan trace(kVmmSpan);
 *
 * Tracing is observe-only: a TraceSpan reads the clock and writes metric
 * cells, never anything the computation depends on, so instrumented code
 * stays bitwise deterministic (see tests/test_determinism.cpp).
 */

#ifndef SWORDFISH_UTIL_TRACE_H
#define SWORDFISH_UTIL_TRACE_H

#include <chrono>

#include "metrics.h"

namespace swordfish {

/** Scoped timer: records its lifetime into a SpanStat on destruction. */
class TraceSpan
{
  public:
    explicit TraceSpan(const SpanStat& stat);

    /** Records elapsed wall time into the span aggregate. */
    ~TraceSpan();

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

    /** Seconds elapsed since construction. */
    double seconds() const;

  private:
    using Clock = std::chrono::steady_clock;
    SpanStat stat_;
    Clock::time_point start_;
};

} // namespace swordfish

#endif // SWORDFISH_UTIL_TRACE_H
