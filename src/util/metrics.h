/**
 * @file
 * Process-wide metrics registry: counters, gauges, and fixed-bucket
 * histograms with per-thread sharded accumulation.
 *
 * Design rules:
 *  - Observe-only: metrics never feed back into any computation, so the
 *    bitwise-determinism guarantees of the evaluation stack (see
 *    tests/test_determinism.cpp) hold with instrumentation enabled at any
 *    thread count.
 *  - Shard-per-thread: every thread accumulates into its own cells, so
 *    ThreadPool workers never contend on a global lock in the hot path.
 *    The registry lock is only taken to register a metric name, to grow a
 *    shard, and to aggregate a snapshot.
 *  - Handles are cheap value types. Call sites cache them in function-local
 *    statics so steady-state updates are one relaxed atomic op.
 *
 * Export: snapshot() merges all shards; toJson() renders one JSON object.
 * When SWORDFISH_METRICS_OUT=<path> is set, the full registry is written
 * there at process exit (and writeMetricsIfConfigured() does it on demand).
 */

#ifndef SWORDFISH_UTIL_METRICS_H
#define SWORDFISH_UTIL_METRICS_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace swordfish {

class MetricsRegistry;

/** Aggregated state of one fixed-bucket histogram. */
struct HistogramSnapshot
{
    std::vector<double> bounds;        ///< ascending upper bucket bounds
    std::vector<std::uint64_t> counts; ///< bounds.size()+1 (last = overflow)
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/** Aggregated wall-time of one traced stage (see util/trace.h). */
struct SpanSnapshot
{
    std::uint64_t calls = 0;
    double seconds = 0.0;    ///< total across all calls and threads
    double maxSeconds = 0.0; ///< slowest single call
};

/** Point-in-time merge of every registered metric. */
struct MetricsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
    std::map<std::string, SpanSnapshot> spans;

    /** Render as a single JSON object. */
    std::string toJson() const;
};

/** Monotonic counter handle. */
class Counter
{
  public:
    void add(std::uint64_t n = 1) const;

  private:
    friend class MetricsRegistry;
    Counter(MetricsRegistry* reg, std::size_t id) : reg_(reg), id_(id) {}
    MetricsRegistry* reg_;
    std::size_t id_;
};

/** Last-write-wins gauge handle. */
class Gauge
{
  public:
    void set(double v) const;

  private:
    friend class MetricsRegistry;
    Gauge(MetricsRegistry* reg, std::size_t id) : reg_(reg), id_(id) {}
    MetricsRegistry* reg_;
    std::size_t id_;
};

/** Fixed-bucket histogram handle. */
class Histogram
{
  public:
    void observe(double v) const;

  private:
    friend class MetricsRegistry;
    Histogram(MetricsRegistry* reg, std::size_t id,
              const std::vector<double>* bounds)
        : reg_(reg), id_(id), bounds_(bounds)
    {
    }
    MetricsRegistry* reg_;
    std::size_t id_;
    const std::vector<double>* bounds_; ///< owned by the registry
};

/** Stage-timing aggregate handle; fed by TraceSpan (util/trace.h). */
class SpanStat
{
  public:
    void record(double seconds) const;

  private:
    friend class MetricsRegistry;
    SpanStat(MetricsRegistry* reg, std::size_t id) : reg_(reg), id_(id) {}
    MetricsRegistry* reg_;
    std::size_t id_;
};

/**
 * The registry. One process-wide instance (metrics()); it is deliberately
 * leaked so worker threads and atexit hooks can always reach it.
 */
class MetricsRegistry
{
  public:
    /** The process-wide registry. */
    static MetricsRegistry& instance();

    /** Register (or look up) a metric by name. Thread-safe. */
    Counter counter(const std::string& name);
    Gauge gauge(const std::string& name);
    /** `bounds` must be ascending; ignored if `name` already exists. */
    Histogram histogram(const std::string& name,
                        std::vector<double> bounds);
    SpanStat span(const std::string& name);

    /** Merge all thread shards into one snapshot. Thread-safe. */
    MetricsSnapshot snapshot() const;

    /** Zero every cell (registrations are kept). For tests/benches. */
    void reset();

    /** Write snapshot().toJson() to `path`; true on success. */
    bool writeJsonFile(const std::string& path) const;

    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  private:
    friend class Counter;
    friend class Gauge;
    friend class Histogram;
    friend class SpanStat;
    friend struct MetricsThreadShard;

    MetricsRegistry();

    void counterAdd(std::size_t id, std::uint64_t n);
    void gaugeSet(std::size_t id, double v);
    void histObserve(std::size_t id, const std::vector<double>& bounds,
                     double v);
    void spanRecord(std::size_t id, double seconds);

    struct Impl;
    Impl* impl_; ///< leaked with the registry
};

/** Shorthand for MetricsRegistry::instance(). */
MetricsRegistry& metrics();

/** Env var naming the JSON dump path ("" / unset disables the dump). */
inline constexpr const char* kMetricsOutEnv = "SWORDFISH_METRICS_OUT";

/**
 * If SWORDFISH_METRICS_OUT names a path, write the current snapshot there
 * and return true. Also invoked automatically at process exit.
 */
bool writeMetricsIfConfigured();

} // namespace swordfish

#endif // SWORDFISH_UTIL_METRICS_H
