#include "json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace swordfish {

namespace {

const JsonValue kNullValue{};

/** Render a double the way the rest of the framework does (shortest
 *  round-trip via %.17g, trimmed of a trailing ".0" ambiguity is not
 *  needed since readers accept either form). */
std::string
dumpDouble(double v)
{
    if (!std::isfinite(v))
        return "null"; // JSON has no Inf/NaN; null is the lossless-ish out
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

const char*
jsonFailureName(JsonFailure failure)
{
    switch (failure) {
      case JsonFailure::None: return "none";
      case JsonFailure::Syntax: return "syntax";
      case JsonFailure::Depth: return "depth";
      case JsonFailure::Number: return "number";
      case JsonFailure::DuplicateKey: return "duplicate_key";
      default: return "trailing";
    }
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

// ---------------------------------------------------------------------------
// JsonValue construction / access
// ---------------------------------------------------------------------------

JsonValue
JsonValue::of(bool b)
{
    JsonValue v;
    v.type_ = Type::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::of(double d)
{
    JsonValue v;
    v.type_ = Type::Number;
    v.num_ = d;
    return v;
}

JsonValue
JsonValue::of(std::int64_t i)
{
    JsonValue v;
    v.type_ = Type::Number;
    v.integral_ = true;
    v.negative_ = i < 0;
    // Negate via unsigned arithmetic so INT64_MIN does not overflow.
    v.magnitude_ = v.negative_
        ? ~static_cast<std::uint64_t>(i) + 1ULL
        : static_cast<std::uint64_t>(i);
    v.num_ = static_cast<double>(i);
    return v;
}

JsonValue
JsonValue::of(std::uint64_t u)
{
    JsonValue v;
    v.type_ = Type::Number;
    v.integral_ = true;
    v.magnitude_ = u;
    v.num_ = static_cast<double>(u);
    return v;
}

JsonValue
JsonValue::of(std::string s)
{
    JsonValue v;
    v.type_ = Type::String;
    v.str_ = std::move(s);
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.type_ = Type::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.type_ = Type::Object;
    return v;
}

bool
JsonValue::asBool(bool fallback) const
{
    return isBool() ? bool_ : fallback;
}

double
JsonValue::asDouble(double fallback) const
{
    if (!isNumber())
        return fallback;
    if (integral_) {
        const double mag = static_cast<double>(magnitude_);
        return negative_ ? -mag : mag;
    }
    return num_;
}

std::int64_t
JsonValue::asI64(std::int64_t fallback) const
{
    if (!isNumber())
        return fallback;
    if (integral_) {
        if (negative_) {
            // Valid down to INT64_MIN, whose magnitude is 2^63.
            if (magnitude_ > 0x8000000000000000ULL)
                return fallback;
            return static_cast<std::int64_t>(~magnitude_ + 1ULL);
        }
        if (magnitude_ > 0x7fffffffffffffffULL)
            return fallback;
        return static_cast<std::int64_t>(magnitude_);
    }
    return static_cast<std::int64_t>(num_);
}

std::uint64_t
JsonValue::asU64(std::uint64_t fallback) const
{
    if (!isNumber())
        return fallback;
    if (integral_)
        return negative_ ? fallback : magnitude_;
    return num_ < 0 ? fallback : static_cast<std::uint64_t>(num_);
}

const std::string&
JsonValue::asString() const
{
    static const std::string empty;
    return isString() ? str_ : empty;
}

std::size_t
JsonValue::size() const
{
    if (isArray())
        return items_.size();
    if (isObject())
        return members_.size();
    return 0;
}

const JsonValue&
JsonValue::at(std::size_t index) const
{
    if (!isArray() || index >= items_.size())
        return kNullValue;
    return items_[index];
}

void
JsonValue::push(JsonValue v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    items_.push_back(std::move(v));
}

const JsonValue&
JsonValue::get(const std::string& key) const
{
    if (isObject()) {
        for (const auto& [k, v] : members_) {
            if (k == key)
                return v;
        }
    }
    return kNullValue;
}

bool
JsonValue::has(const std::string& key) const
{
    if (!isObject())
        return false;
    for (const auto& [k, v] : members_) {
        if (k == key)
            return true;
    }
    return false;
}

void
JsonValue::set(const std::string& key, JsonValue v)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    for (auto& [k, existing] : members_) {
        if (k == key) {
            existing = std::move(v);
            return;
        }
    }
    members_.emplace_back(key, std::move(v));
}

const std::vector<std::pair<std::string, JsonValue>>&
JsonValue::members() const
{
    return members_;
}

std::string
JsonValue::dump() const
{
    switch (type_) {
      case Type::Null: return "null";
      case Type::Bool: return bool_ ? "true" : "false";
      case Type::Number:
        if (integral_)
            return (negative_ ? "-" : "") + std::to_string(magnitude_);
        return dumpDouble(num_);
      case Type::String: return "\"" + jsonEscape(str_) + "\"";
      case Type::Array: {
        std::string out = "[";
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i > 0)
                out += ",";
            out += items_[i].dump();
        }
        return out + "]";
      }
      default: {
        std::string out = "{";
        bool first = true;
        for (const auto& [k, v] : members_) {
            if (!first)
                out += ",";
            first = false;
            out += "\"" + jsonEscape(k) + "\":" + v.dump();
        }
        return out + "}";
      }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser
{
  public:
    Parser(const std::string& text, std::size_t max_depth)
        : text_(text), maxDepth_(max_depth)
    {}

    JsonError
    run(JsonValue& out)
    {
        JsonValue v;
        if (JsonError err = parseValue(v, 0))
            return err;
        skipWs();
        if (pos_ != text_.size())
            return fail(JsonFailure::Trailing,
                        "trailing characters after JSON value");
        out = std::move(v);
        return {};
    }

  private:
    JsonError
    fail(JsonFailure kind, const std::string& msg)
    {
        return {kind, pos_, msg + " at offset " + std::to_string(pos_)};
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()
               && (text_[pos_] == ' ' || text_[pos_] == '\t'
                   || text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char* word)
    {
        std::size_t p = pos_;
        for (const char* w = word; *w != '\0'; ++w, ++p) {
            if (p >= text_.size() || text_[p] != *w)
                return false;
        }
        pos_ = p;
        return true;
    }

    JsonError
    parseValue(JsonValue& out, std::size_t depth)
    {
        if (depth > maxDepth_)
            return fail(JsonFailure::Depth, "nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail(JsonFailure::Syntax, "unexpected end of input");
        const char c = text_[pos_];
        if (c == '{')
            return parseObject(out, depth);
        if (c == '[')
            return parseArray(out, depth);
        if (c == '"')
            return parseString(out);
        if (c == '-' || (c >= '0' && c <= '9'))
            return parseNumber(out);
        if (literal("true")) {
            out = JsonValue::of(true);
            return {};
        }
        if (literal("false")) {
            out = JsonValue::of(false);
            return {};
        }
        if (literal("null")) {
            out = JsonValue::makeNull();
            return {};
        }
        return fail(JsonFailure::Syntax,
                    std::string("unexpected character '") + c + "'");
    }

    JsonError
    parseObject(JsonValue& out, std::size_t depth)
    {
        ++pos_; // '{'
        JsonValue obj = JsonValue::object();
        skipWs();
        if (consume('}')) {
            out = std::move(obj);
            return {};
        }
        for (;;) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail(JsonFailure::Syntax, "expected object key");
            JsonValue key;
            if (JsonError err = parseString(key))
                return err;
            if (obj.has(key.asString()))
                return fail(JsonFailure::DuplicateKey,
                            "duplicate key \"" + key.asString() + "\"");
            skipWs();
            if (!consume(':'))
                return fail(JsonFailure::Syntax, "expected ':'");
            JsonValue value;
            if (JsonError err = parseValue(value, depth + 1))
                return err;
            obj.set(key.asString(), std::move(value));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                break;
            return fail(JsonFailure::Syntax, "expected ',' or '}'");
        }
        out = std::move(obj);
        return {};
    }

    JsonError
    parseArray(JsonValue& out, std::size_t depth)
    {
        ++pos_; // '['
        JsonValue arr = JsonValue::array();
        skipWs();
        if (consume(']')) {
            out = std::move(arr);
            return {};
        }
        for (;;) {
            JsonValue value;
            if (JsonError err = parseValue(value, depth + 1))
                return err;
            arr.push(std::move(value));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                break;
            return fail(JsonFailure::Syntax, "expected ',' or ']'");
        }
        out = std::move(arr);
        return {};
    }

    JsonError
    parseString(JsonValue& out)
    {
        ++pos_; // opening quote
        std::string s;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                out = JsonValue::of(std::move(s));
                return {};
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail(JsonFailure::Syntax,
                            "unescaped control character in string");
            if (c != '\\') {
                s.push_back(c);
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': s.push_back('"'); break;
              case '\\': s.push_back('\\'); break;
              case '/': s.push_back('/'); break;
              case 'b': s.push_back('\b'); break;
              case 'f': s.push_back('\f'); break;
              case 'n': s.push_back('\n'); break;
              case 'r': s.push_back('\r'); break;
              case 't': s.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail(JsonFailure::Syntax,
                                "truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_ + static_cast<std::size_t>(i)];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail(JsonFailure::Syntax,
                                    "bad hex digit in \\u escape");
                }
                pos_ += 4;
                if (code < 0x80) {
                    s.push_back(static_cast<char>(code));
                } else {
                    // Non-ASCII escapes stay escaped: the framework's
                    // strings are identifiers and paths, and a lossless
                    // pass-through beats a partial UTF-8 encoder.
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", code);
                    s += buf;
                }
                break;
              }
              default:
                return fail(JsonFailure::Syntax, "bad escape character");
            }
        }
        return fail(JsonFailure::Syntax, "unterminated string");
    }

    JsonError
    parseNumber(JsonValue& out)
    {
        const std::size_t start = pos_;
        const bool negative = consume('-');
        if (pos_ >= text_.size()
            || !(text_[pos_] >= '0' && text_[pos_] <= '9'))
            return fail(JsonFailure::Syntax, "malformed number");
        bool integral = true;
        bool overflow = false;
        std::uint64_t magnitude = 0;
        while (pos_ < text_.size() && text_[pos_] >= '0'
               && text_[pos_] <= '9') {
            const std::uint64_t digit =
                static_cast<std::uint64_t>(text_[pos_] - '0');
            if (magnitude > (0xffffffffffffffffULL - digit) / 10ULL)
                overflow = true;
            else
                magnitude = magnitude * 10ULL + digit;
            ++pos_;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            integral = false;
            ++pos_;
            if (pos_ >= text_.size()
                || !(text_[pos_] >= '0' && text_[pos_] <= '9'))
                return fail(JsonFailure::Syntax, "malformed number");
            while (pos_ < text_.size() && text_[pos_] >= '0'
                   && text_[pos_] <= '9')
                ++pos_;
        }
        if (pos_ < text_.size()
            && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < text_.size()
                && (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size()
                || !(text_[pos_] >= '0' && text_[pos_] <= '9'))
                return fail(JsonFailure::Syntax, "malformed number");
            while (pos_ < text_.size() && text_[pos_] >= '0'
                   && text_[pos_] <= '9')
                ++pos_;
        }
        if (integral) {
            if (overflow)
                return fail(JsonFailure::Number,
                            "integer literal out of 64-bit range");
            if (negative) {
                if (magnitude > 0x8000000000000000ULL)
                    return fail(JsonFailure::Number,
                                "integer literal out of 64-bit range");
                out = JsonValue::of(static_cast<std::int64_t>(
                    ~magnitude + 1ULL));
            } else {
                out = JsonValue::of(magnitude);
            }
            return {};
        }
        const std::string token = text_.substr(start, pos_ - start);
        char* end = nullptr;
        const double d = std::strtod(token.c_str(), &end);
        if (end == token.c_str() || !std::isfinite(d))
            return fail(JsonFailure::Number, "unrepresentable number");
        out = JsonValue::of(d);
        return {};
    }

    const std::string& text_;
    std::size_t pos_ = 0;
    std::size_t maxDepth_;
};

} // namespace

JsonError
JsonValue::parse(const std::string& text, JsonValue& out,
                 std::size_t max_depth)
{
    Parser parser(text, max_depth);
    return parser.run(out);
}

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

JsonWriter&
JsonWriter::key(const std::string& k)
{
    if (!first_)
        out_ += ",";
    first_ = false;
    out_ += "\"" + jsonEscape(k) + "\":";
    return *this;
}

JsonWriter&
JsonWriter::field(const std::string& k, const std::string& value)
{
    key(k).out_ += "\"" + jsonEscape(value) + "\"";
    return *this;
}

JsonWriter&
JsonWriter::field(const std::string& k, const char* value)
{
    return field(k, std::string(value));
}

JsonWriter&
JsonWriter::field(const std::string& k, bool value)
{
    key(k).out_ += value ? "true" : "false";
    return *this;
}

JsonWriter&
JsonWriter::field(const std::string& k, double value)
{
    key(k).out_ += dumpDouble(value);
    return *this;
}

JsonWriter&
JsonWriter::field(const std::string& k, std::int64_t value)
{
    key(k).out_ += std::to_string(value);
    return *this;
}

JsonWriter&
JsonWriter::field(const std::string& k, std::uint64_t value)
{
    key(k).out_ += std::to_string(value);
    return *this;
}

JsonWriter&
JsonWriter::field(const std::string& k, int value)
{
    return field(k, static_cast<std::int64_t>(value));
}

JsonWriter&
JsonWriter::field(const std::string& k, unsigned value)
{
    return field(k, static_cast<std::uint64_t>(value));
}

JsonWriter&
JsonWriter::raw(const std::string& k, const std::string& json)
{
    key(k).out_ += json;
    return *this;
}

} // namespace swordfish
