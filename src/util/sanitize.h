/** @file Sanitizer interop helpers.
 *
 *  A few process-lifetime singletons (metrics registry, fault injector and
 *  its config snapshots) are intentionally leaked so worker threads and
 *  atexit hooks can always reach them. LeakSanitizer would report each one;
 *  `leakIntentionally` annotates the allocation as a root so ASan builds
 *  stay clean without a suppressions file. Memory reachable only through an
 *  ignored object is suppressed transitively, so annotating the owning
 *  pointer is enough.
 */

#pragma once

#if defined(__SANITIZE_ADDRESS__)
#include <sanitizer/lsan_interface.h>
#endif

namespace swordfish {

/** Mark a deliberately-leaked heap object so LeakSanitizer ignores it. */
inline void
leakIntentionally(const void* object)
{
#if defined(__SANITIZE_ADDRESS__)
    __lsan_ignore_object(object);
#else
    (void)object;
#endif
}

} // namespace swordfish
