/**
 * @file
 * Wall-clock timing helpers for the pipeline breakdown experiment (Fig. 1)
 * and general profiling.
 */

#ifndef SWORDFISH_UTIL_TIMER_H
#define SWORDFISH_UTIL_TIMER_H

#include <chrono>
#include <string>
#include <utility>

#include "logging.h"

namespace swordfish {

/** Restartable stopwatch returning elapsed seconds. */
class Stopwatch
{
  public:
    Stopwatch() { restart(); }

    /** Reset the start point to now. */
    void restart() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or last restart(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Milliseconds elapsed. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/** RAII timer that logs its scope's duration at Debug level. */
class ScopeTimer
{
  public:
    explicit ScopeTimer(std::string label) : label_(std::move(label)) {}

    ~ScopeTimer()
    {
        debugLog(label_, " took ", watch_.milliseconds(), " ms");
    }

    ScopeTimer(const ScopeTimer&) = delete;
    ScopeTimer& operator=(const ScopeTimer&) = delete;

    /** Elapsed seconds so far. */
    double seconds() const { return watch_.seconds(); }

  private:
    std::string label_;
    Stopwatch watch_;
};

} // namespace swordfish

#endif // SWORDFISH_UTIL_TIMER_H
