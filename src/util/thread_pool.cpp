#include "thread_pool.h"

#include <algorithm>
#include <memory>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "util/env.h"

namespace swordfish {

namespace {

/** Set while a thread is executing inside ThreadPool::workerLoop(). */
thread_local bool tls_in_worker = false;

} // namespace

bool
ThreadPool::inWorker()
{
    return tls_in_worker;
}

ThreadPool::ThreadPool(std::size_t threads)
{
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_)
        t.join();
}

void
ThreadPool::workerLoop()
{
    tls_in_worker = true;
#ifdef _OPENMP
    // Workers execute whole tasks; letting each also open OpenMP teams
    // would oversubscribe the machine, so the GEMM pragmas collapse to one
    // thread inside pool workers (num-threads is a per-thread OpenMP ICV).
    omp_set_num_threads(1);
#endif
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    if (workers_.empty()) {
        task();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::runTasks(std::vector<std::function<void()>> tasks)
{
    if (workers_.empty() || inWorker() || tasks.size() <= 1) {
        for (auto& task : tasks)
            task();
        return;
    }

    std::vector<std::future<void>> futures;
    futures.reserve(tasks.size());
    for (auto& task : tasks)
        futures.push_back(submit(std::move(task)));

    // Wait for the whole batch, then surface the first failure.
    std::exception_ptr first;
    for (auto& fut : futures) {
        try {
            fut.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

std::size_t
ThreadPool::shardCount(std::size_t n) const
{
    if (n <= 1 || workers_.size() <= 1 || inWorker())
        return 1;
    return std::min(workers_.size(), n);
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)>& body)
{
    const std::size_t shards = shardCount(n);
    if (shards <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    std::vector<std::function<void()>> tasks;
    tasks.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
        tasks.push_back([&body, n, shards, s] {
            const auto [begin, end] = shardRange(n, shards, s);
            for (std::size_t i = begin; i < end; ++i)
                body(i);
        });
    }
    runTasks(std::move(tasks));
}

namespace {

std::size_t
defaultPoolThreads()
{
    return runtimeConfig().poolThreads();
}

std::unique_ptr<ThreadPool>&
globalPoolSlot()
{
    static std::unique_ptr<ThreadPool> pool;
    return pool;
}

} // namespace

ThreadPool&
globalPool()
{
    auto& slot = globalPoolSlot();
    if (!slot)
        slot = std::make_unique<ThreadPool>(defaultPoolThreads());
    return *slot;
}

void
setGlobalPoolThreads(std::size_t threads)
{
    auto& slot = globalPoolSlot();
    slot.reset(); // join old workers before spawning the new pool
    slot = std::make_unique<ThreadPool>(threads);
}

} // namespace swordfish
