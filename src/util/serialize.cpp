#include "serialize.h"

#include <cerrno>
#include <cstdio>

#include <fcntl.h>
#include <unistd.h>

namespace swordfish {

namespace {

/** fsync the object at `path`; false when it cannot be opened or synced. */
bool
syncPath(const std::string& path, int open_flags)
{
    const int fd = ::open(path.c_str(), open_flags);
    if (fd < 0)
        return false;
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}

/** Directory containing `path` ("." when it has no separator). */
std::string
parentDir(const std::string& path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    return slash == 0 ? "/" : path.substr(0, slash);
}

} // namespace

std::string
atomicTempPath(const std::string& path)
{
    // Per-process suffix so concurrent writers of different runs never
    // stage through the same temp file.
    return path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
}

bool
atomicCommitFile(const std::string& temp_path, const std::string& path)
{
    if (!syncPath(temp_path, O_RDONLY)) {
        std::remove(temp_path.c_str());
        return false;
    }
    if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
        std::remove(temp_path.c_str());
        return false;
    }
    // Make the rename itself durable: without the directory-entry sync a
    // power loss can roll the rename back even though the file's bytes
    // are on disk. Failing here does not undo the rename (the new file is
    // in place, just not yet guaranteed durable), so a genuine sync
    // failure degrades the commit to non-durable rather than undoing it.
    fsyncDirectory(parentDir(path));
    return true;
}

bool
fsyncErrnoIsBenign(int err)
{
    // EINVAL: fsync not supported on this object (POSIX allows it for
    // directories); ENOTSUP/EOPNOTSUPP: filesystem-level refusal. These
    // mean "this fs cannot make directory entries durable", not "your
    // sync was lost" — treat the commit as done.
    return err == EINVAL || err == ENOTSUP || err == EOPNOTSUPP;
}

bool
fsyncDirectory(const std::string& dir)
{
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return false;
    const bool ok = ::fsync(fd) == 0 || fsyncErrnoIsBenign(errno);
    ::close(fd);
    return ok;
}

bool
atomicWriteFile(const std::string& path, const std::string& contents)
{
    const std::string temp = atomicTempPath(path);
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        if (!contents.empty())
            out.write(contents.data(),
                      static_cast<std::streamsize>(contents.size()));
        out.flush();
        if (!out) {
            out.close();
            std::remove(temp.c_str());
            return false;
        }
    }
    return atomicCommitFile(temp, path);
}

AtomicBinaryWriter::AtomicBinaryWriter(const std::string& path)
    : path_(path), tempPath_(atomicTempPath(path)), writer_(tempPath_)
{}

AtomicBinaryWriter::~AtomicBinaryWriter()
{
    if (!committed_) {
        writer_.close();
        std::remove(tempPath_.c_str());
    }
}

bool
AtomicBinaryWriter::commit()
{
    if (committed_)
        return committedOk_;
    committed_ = true; // the temp file is resolved below either way
    if (!writer_.close()) {
        std::remove(tempPath_.c_str());
        committedOk_ = false;
        return false;
    }
    committedOk_ = atomicCommitFile(tempPath_, path_);
    return committedOk_;
}

} // namespace swordfish
