#include "logging.h"

#include <cstring>
#include <mutex>

namespace swordfish {

namespace {

LogLevel&
levelStorage()
{
    static LogLevel level = [] {
        const char* env = std::getenv("SWORDFISH_LOG");
        if (env == nullptr)
            return LogLevel::Info;
        if (std::strcmp(env, "debug") == 0)
            return LogLevel::Debug;
        if (std::strcmp(env, "warn") == 0)
            return LogLevel::Warn;
        if (std::strcmp(env, "error") == 0)
            return LogLevel::Error;
        if (std::strcmp(env, "silent") == 0)
            return LogLevel::Silent;
        return LogLevel::Info;
    }();
    return level;
}

std::mutex&
logMutex()
{
    static std::mutex m;
    return m;
}

const char*
prefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "[debug] ";
      case LogLevel::Info: return "[info] ";
      case LogLevel::Warn: return "[warn] ";
      case LogLevel::Error: return "[error] ";
      default: return "";
    }
}

} // namespace

LogLevel
logLevel()
{
    return levelStorage();
}

void
setLogLevel(LogLevel level)
{
    levelStorage() = level;
}

namespace detail {

void
emit(LogLevel level, const std::string& msg)
{
    if (level < logLevel())
        return;
    std::lock_guard<std::mutex> lock(logMutex());
    std::cerr << prefix(level) << msg << '\n';
}

} // namespace detail

} // namespace swordfish
