/**
 * @file
 * Reusable work-queue thread pool for the evaluation stack.
 *
 * Design goals (in order):
 *  1. Determinism support: the pool never decides *what* is computed, only
 *     *where*. Callers produce per-index results into preallocated slots and
 *     reduce them in index order, so outputs are bitwise identical for any
 *     worker count (see core/evaluator.cpp and basecall/basecaller.cpp).
 *  2. Safe nesting: a parallel construct invoked from inside a pool worker
 *     runs inline on that worker instead of enqueueing. This makes nested
 *     parallelism (Monte-Carlo runs -> reads -> tile programming) deadlock
 *     free: tasks never wait on tasks that could be starved behind them.
 *  3. Exceptions propagate: the first exception thrown by any task of a
 *     parallelFor/runTasks batch is rethrown on the calling thread after
 *     the whole batch has drained.
 *
 * The process-wide pool is sized by the SWORDFISH_THREADS environment
 * variable (default: hardware concurrency) and can be resized at runtime by
 * tests and benches via setGlobalPoolThreads().
 */

#ifndef SWORDFISH_UTIL_THREAD_POOL_H
#define SWORDFISH_UTIL_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace swordfish {

/** Fixed-size worker pool executing submitted tasks FIFO. */
class ThreadPool
{
  public:
    /** Spawn `threads` workers (0 = no workers; everything runs inline). */
    explicit ThreadPool(std::size_t threads);

    /** Drains nothing: joins after finishing already-queued tasks. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads owned by this pool. */
    std::size_t threadCount() const { return workers_.size(); }

    /**
     * Submit one task; the future reports completion or the task's
     * exception. With zero workers the task runs inline before returning.
     */
    template <typename F>
    std::future<std::invoke_result_t<F>>
    submit(F&& fn)
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        enqueue([task] { (*task)(); });
        return fut;
    }

    /**
     * Run a batch of tasks to completion, rethrowing the first exception.
     * Runs inline (serially, in order) when the pool has no workers or the
     * caller is itself a pool worker (nesting rule above).
     */
    void runTasks(std::vector<std::function<void()>> tasks);

    /**
     * Execute body(0..n-1), fanning indices out across workers in
     * contiguous chunks. Same inline rules and exception behaviour as
     * runTasks(). Chunking is by index only — callers that need
     * shard-local state should use shardRange()/runTasks() directly.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)>& body);

    /**
     * Number of contiguous shards parallelFor-style helpers should split
     * `n` items into: min(workers, n), at least 1, and exactly 1 when
     * called from a worker thread (nested constructs run inline).
     */
    std::size_t shardCount(std::size_t n) const;

    /** [begin, end) of shard `s` when n items are split into `shards`. */
    static std::pair<std::size_t, std::size_t>
    shardRange(std::size_t n, std::size_t shards, std::size_t s)
    {
        const std::size_t base = n / shards, rem = n % shards;
        const std::size_t begin = s * base + std::min(s, rem);
        return {begin, begin + base + (s < rem ? 1 : 0)};
    }

    /** True when the calling thread is a worker of any ThreadPool. */
    static bool inWorker();

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    bool stopping_ = false;
};

/**
 * The process-wide evaluation pool. First use sizes it from
 * SWORDFISH_THREADS (default: hardware concurrency; values < 1 mean
 * "no workers", i.e. fully serial execution).
 */
ThreadPool& globalPool();

/**
 * Resize the global pool (joins the old workers first). Intended for tests
 * and benches that compare serial vs. pooled execution; not thread-safe
 * against concurrent globalPool() users.
 */
void setGlobalPoolThreads(std::size_t threads);

} // namespace swordfish

#endif // SWORDFISH_UTIL_THREAD_POOL_H
