/**
 * @file
 * Summary statistics helpers used by the System Evaluator and benches.
 */

#ifndef SWORDFISH_UTIL_STATS_H
#define SWORDFISH_UTIL_STATS_H

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace swordfish {

/**
 * Streaming mean/variance accumulator (Welford's algorithm).
 *
 * Used wherever the paper reports error bars over repeated noisy runs
 * (e.g., 1000 instantiations of write variation in Fig. 7).
 */
class RunningStat
{
  public:
    /** Add one observation. */
    void
    add(double x)
    {
        ++count_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
        min_ = count_ == 1 ? x : std::min(min_, x);
        max_ = count_ == 1 ? x : std::max(max_, x);
    }

    std::size_t count() const { return count_; }
    double mean() const { return mean_; }
    double min() const { return min_; }
    double max() const { return max_; }

    /** Sample variance (n-1 denominator); 0 with fewer than 2 samples. */
    double
    variance() const
    {
        return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
    }

    double stddev() const { return std::sqrt(variance()); }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Batch summary of a sample vector, including order statistics. */
struct Summary
{
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double median = 0.0;
    std::size_t count = 0;

    /** Compute a Summary over the given samples. */
    static Summary
    of(std::vector<double> samples)
    {
        if (samples.empty())
            throw std::invalid_argument("Summary::of: empty sample set");
        Summary s;
        RunningStat rs;
        for (double x : samples)
            rs.add(x);
        s.mean = rs.mean();
        s.stddev = rs.stddev();
        s.min = rs.min();
        s.max = rs.max();
        s.count = samples.size();
        // Median must agree with percentile(samples, 50): interpolate the
        // two middle elements for even-sized samples instead of returning
        // the upper one.
        const std::size_t mid = samples.size() / 2;
        std::nth_element(samples.begin(),
                         samples.begin() + static_cast<std::ptrdiff_t>(mid),
                         samples.end());
        const double upper = samples[mid];
        if (samples.size() % 2 == 0) {
            // nth_element left the lower half before `mid`; its maximum is
            // the lower middle element.
            const double lower = *std::max_element(
                samples.begin(),
                samples.begin() + static_cast<std::ptrdiff_t>(mid));
            s.median = lower * 0.5 + upper * 0.5;
        } else {
            s.median = upper;
        }
        return s;
    }
};

/** Linear interpolation percentile (p in [0,100]) of a sample vector. */
inline double
percentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        throw std::invalid_argument("percentile: empty sample set");
    std::sort(samples.begin(), samples.end());
    const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

} // namespace swordfish

#endif // SWORDFISH_UTIL_STATS_H
