/**
 * @file
 * Plain-text table printer so every bench emits the same row/column layout
 * the paper's tables and figures report.
 */

#ifndef SWORDFISH_UTIL_TABLE_H
#define SWORDFISH_UTIL_TABLE_H

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace swordfish {

/** Column-aligned text table accumulated row by row, printed at the end. */
class TextTable
{
  public:
    /** Set the header row. */
    void
    header(std::vector<std::string> cols)
    {
        header_ = std::move(cols);
    }

    /** Append a data row (stringified cells). */
    void
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    /** Format a double with fixed precision — convenience for cells. */
    static std::string
    num(double v, int precision = 2)
    {
        std::ostringstream oss;
        oss << std::fixed << std::setprecision(precision) << v;
        return oss.str();
    }

    /** Render to the given stream with aligned columns. */
    void
    print(std::ostream& os = std::cout) const
    {
        std::vector<std::size_t> widths;
        auto grow = [&](const std::vector<std::string>& cells) {
            if (widths.size() < cells.size())
                widths.resize(cells.size(), 0);
            for (std::size_t i = 0; i < cells.size(); ++i)
                widths[i] = std::max(widths[i], cells[i].size());
        };
        grow(header_);
        for (const auto& r : rows_)
            grow(r);

        auto emit = [&](const std::vector<std::string>& cells) {
            for (std::size_t i = 0; i < cells.size(); ++i) {
                os << std::left << std::setw(
                    static_cast<int>(widths[i]) + 2) << cells[i];
            }
            os << '\n';
        };
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 2;
        os << std::string(total, '-') << '\n';
        for (const auto& r : rows_)
            emit(r);
        os.flush();
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace swordfish

#endif // SWORDFISH_UTIL_TABLE_H
