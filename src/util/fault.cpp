#include "fault.h"

#include <cctype>
#include <sstream>

#include "util/env.h"
#include "util/logging.h"
#include "util/sanitize.h"

namespace swordfish {

namespace {

/** Distinct hash tags so site schedules are independent streams. */
constexpr std::uint64_t kFireTag = 0xfa017f17e5ULL;
constexpr std::uint64_t kDrawTag = 0xfa017d7a3ULL;
constexpr std::uint64_t kRetryTag = 0xfa0173e7717ULL;

constexpr const char* kSiteNames[kFaultSiteCount] = {
    "decode", "chunk", "program", "vmm.nan", "vmm.stuck", "task",
    "service.spool.write", "service.spool.read", "service.job.throw",
    "service.job.stall", "service.conn.drop",
};

/** Map a 64-bit hash to a uniform double in [0, 1). */
double
hashToUniform(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool
parseDouble(const std::string& s, double& out)
{
    if (s.empty())
        return false;
    std::size_t pos = 0;
    try {
        out = std::stod(s, &pos);
    } catch (const std::exception&) {
        return false;
    }
    return pos == s.size();
}

bool
parseU64(const std::string& s, std::uint64_t& out)
{
    if (s.empty())
        return false;
    std::size_t pos = 0;
    try {
        out = std::stoull(s, &pos);
    } catch (const std::exception&) {
        return false;
    }
    return pos == s.size();
}

} // namespace

const char*
faultSiteName(FaultSite site)
{
    const auto i = static_cast<std::size_t>(site);
    return i < kFaultSiteCount ? kSiteNames[i] : "?";
}

bool
FaultConfig::anyEnabled() const
{
    for (double p : probability)
        if (p > 0.0)
            return true;
    return false;
}

bool
FaultConfig::parse(const std::string& spec, FaultConfig& out,
                   std::string& error)
{
    FaultConfig cfg;
    std::string token;
    auto consume = [&]() -> bool {
        if (token.empty())
            return true;
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0) {
            error = "fault spec token '" + token + "' is not key=value";
            return false;
        }
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        if (key == "seed") {
            if (!parseU64(value, cfg.seed)) {
                error = "fault spec: bad seed '" + value + "'";
                return false;
            }
            return true;
        }
        if (key == "retries") {
            std::uint64_t n = 0;
            if (!parseU64(value, n) || n > 1000) {
                error = "fault spec: bad retries '" + value + "'";
                return false;
            }
            cfg.maxRetries = static_cast<std::size_t>(n);
            return true;
        }
        for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
            if (key == kSiteNames[i]) {
                double p = 0.0;
                if (!parseDouble(value, p) || p < 0.0 || p > 1.0) {
                    error = "fault spec: probability of '" + key
                        + "' must be in [0, 1], got '" + value + "'";
                    return false;
                }
                cfg.probability[i] = p;
                return true;
            }
        }
        error = "fault spec: unknown site '" + key + "'";
        return false;
    };

    for (const char c : spec) {
        if (c == ',' || c == ';' || std::isspace(static_cast<unsigned char>(c))) {
            if (!consume())
                return false;
            token.clear();
        } else {
            token.push_back(c);
        }
    }
    if (!consume())
        return false;
    out = cfg;
    return true;
}

std::string
FaultConfig::toJson() const
{
    std::ostringstream os;
    os << "{\"seed\":" << seed << ",\"retries\":" << maxRetries;
    for (std::size_t i = 0; i < kFaultSiteCount; ++i)
        os << ",\"" << kSiteNames[i] << "\":" << probability[i];
    os << "}";
    return os.str();
}

FaultInjector::FaultInjector()
{
    auto* cfg = new FaultConfig();
    // SWORDFISH_CHAOS composes after SWORDFISH_FAULTS: one grammar, one
    // parse, later tokens (including a chaos seed=) win.
    std::string spec = runtimeConfig().faults;
    const std::string& chaos = runtimeConfig().chaos;
    if (!chaos.empty())
        spec += (spec.empty() ? "" : ",") + chaos;
    if (!spec.empty()) {
        std::string error;
        if (!FaultConfig::parse(spec, *cfg, error))
            fatal("SWORDFISH_FAULTS/SWORDFISH_CHAOS: ", error);
    }
    enabled_.store(cfg->anyEnabled(), std::memory_order_relaxed);
    leakIntentionally(cfg);
    cfg_.store(cfg, std::memory_order_release);
}

FaultInjector&
FaultInjector::instance()
{
    // Leaked (like the metrics registry) so worker threads and atexit
    // hooks can always consult it.
    static FaultInjector* injector = [] {
        auto* inj = new FaultInjector();
        leakIntentionally(inj);
        return inj;
    }();
    return *injector;
}

void
FaultInjector::configure(const FaultConfig& cfg)
{
    // Old snapshots are intentionally leaked: reconfiguration happens a
    // handful of times per process (tests, campaign setup) and readers may
    // still hold the previous pointer.
    auto* next = new FaultConfig(cfg);
    leakIntentionally(next);
    cfg_.store(next, std::memory_order_release);
    enabled_.store(next->anyEnabled(), std::memory_order_relaxed);
}

FaultConfig
FaultInjector::config() const
{
    return *cfg_.load(std::memory_order_acquire);
}

std::size_t
FaultInjector::maxRetries() const
{
    return cfg_.load(std::memory_order_acquire)->maxRetries;
}

bool
FaultInjector::fires(FaultSite site, std::uint64_t key) const
{
    const FaultConfig* cfg = cfg_.load(std::memory_order_acquire);
    const double p = cfg->p(site);
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    const std::uint64_t h = hashSeed(
        {cfg->seed, static_cast<std::uint64_t>(site), key, kFireTag});
    return hashToUniform(h) < p;
}

std::uint64_t
FaultInjector::draw(FaultSite site, std::uint64_t key,
                    std::uint64_t n) const
{
    const FaultConfig* cfg = cfg_.load(std::memory_order_acquire);
    const std::uint64_t h = hashSeed(
        {cfg->seed, static_cast<std::uint64_t>(site), key, kDrawTag});
    return n > 0 ? h % n : 0;
}

std::uint64_t
FaultInjector::retryStream(std::uint64_t read_stream, std::size_t attempt)
{
    return hashSeed({read_stream, static_cast<std::uint64_t>(attempt),
                     kRetryTag});
}

std::uint64_t
FaultInjector::serviceKey(const std::string& name)
{
    // FNV-1a, 64-bit: stable across processes (unlike std::hash).
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

FaultInjector&
faultInjector()
{
    return FaultInjector::instance();
}

} // namespace swordfish
