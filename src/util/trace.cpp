#include "trace.h"

namespace swordfish {

TraceSpan::TraceSpan(const SpanStat& stat)
    : stat_(stat), start_(Clock::now())
{
}

TraceSpan::~TraceSpan()
{
    stat_.record(seconds());
}

double
TraceSpan::seconds() const
{
    return std::chrono::duration<double>(Clock::now() - start_).count();
}

} // namespace swordfish
