/**
 * @file
 * Deterministic, seed-driven fault injection for the evaluation stack.
 *
 * Swordfish evaluates *non-ideal* hardware, and PUMA-style accelerators
 * treat per-tile failure as an expected operating condition — so the
 * framework degrades gracefully instead of aborting a whole Monte-Carlo
 * campaign on the first bad read or poisoned VMM. The FaultInjector is the
 * single registry every fault site consults.
 *
 * Design rules (mirroring the per-read noise streams of the parallel
 * evaluator):
 *  - Pure firing schedule: whether a fault fires at (site, key) is a pure
 *    function of (fault seed, site, key) — never of call order, thread
 *    interleaving, or batch grouping. With a fixed fault seed, outcomes are
 *    bitwise identical across any thread x batch grid.
 *  - Zero overhead when disabled: every site checks one relaxed atomic and
 *    bails, so with SWORDFISH_FAULTS unset the binary behaves exactly as a
 *    build without this layer.
 *  - Off the noise streams: fault decisions hash their own tag and never
 *    draw from the conversion-noise RNGs, so enabling a site with
 *    probability 0 is also bitwise-invisible.
 *
 * Sites (env spec name in parentheses):
 *  - ReadDecode (decode): read fails to decode; skipped, ReadOutcome::DecodeError.
 *  - Chunk (chunk): signal chunking/normalization fails; same handling.
 *  - TileProgram (program): a crossbar tile fails to program; the tile comes
 *    up dead (all-zero weights) and execution continues.
 *  - VmmNan (vmm.nan): the VMM output of a read is NaN/Inf-poisoned; the
 *    read is skipped as ReadOutcome::VmmFault.
 *  - VmmStuck (vmm.stuck): one output column of every VMM of a read sticks
 *    at zero; silent accuracy degradation, the read still counts.
 *  - WorkerTask (task): transient worker failure; the attempt is discarded
 *    and retried (bounded) with a fresh noise stream.
 *
 * Service (swordfishd) chaos sites, keyed on (seed, site, job id) so a
 * chaos schedule is replayable run to run:
 *  - SpoolWrite (service.spool.write): a spool record write is dropped.
 *  - SpoolRead (service.spool.read): a spool record reads as corrupt at
 *    restart and is quarantined.
 *  - JobThrow (service.job.throw): job execution throws a transient error
 *    before running; exercises retry/backoff.
 *  - JobStall (service.job.stall): the job stalls at block boundaries;
 *    exercises deadline enforcement.
 *  - ConnDrop (service.conn.drop): the daemon side of a connection drops
 *    without replying.
 *
 * Configure via SWORDFISH_FAULTS, e.g.
 *   SWORDFISH_FAULTS="seed=42,retries=2,decode=0.05,vmm.nan=0.1,task=0.2"
 * or programmatically (tests) via FaultInjector::configure / ScopedFaultConfig.
 * SWORDFISH_CHAOS holds a second spec of the same grammar, appended after
 * SWORDFISH_FAULTS (later tokens win), so a service chaos drill composes
 * with — or stands apart from — an evaluation fault campaign.
 */

#ifndef SWORDFISH_UTIL_FAULT_H
#define SWORDFISH_UTIL_FAULT_H

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "util/rng.h"

namespace swordfish {

/** Named fault sites; values index FaultConfig::probability. */
enum class FaultSite : std::size_t {
    ReadDecode = 0,
    Chunk,
    TileProgram,
    VmmNan,
    VmmStuck,
    WorkerTask,
    // Service-layer chaos sites (swordfishd supervision drills).
    SpoolWrite,
    SpoolRead,
    JobThrow,
    JobStall,
    ConnDrop,
};

inline constexpr std::size_t kFaultSiteCount = 11;

/** The env-spec name of a site ("decode", "vmm.nan", ...). */
const char* faultSiteName(FaultSite site);

/** One injection campaign: seed, retry budget, per-site probabilities. */
struct FaultConfig
{
    std::uint64_t seed = 1;   ///< firing-schedule seed
    std::size_t maxRetries = 2; ///< retry budget for transient faults
    std::array<double, kFaultSiteCount> probability{}; ///< all 0 = off

    double
    p(FaultSite site) const
    {
        return probability[static_cast<std::size_t>(site)];
    }

    void
    setP(FaultSite site, double prob)
    {
        probability[static_cast<std::size_t>(site)] = prob;
    }

    /** True when any site can fire. */
    bool anyEnabled() const;

    /**
     * Parse a "seed=42,decode=0.1,vmm.nan=0.05,retries=1" spec (commas,
     * semicolons, or spaces separate tokens). On failure returns false and
     * sets `error`; `out` is left untouched.
     */
    static bool parse(const std::string& spec, FaultConfig& out,
                      std::string& error);

    /** One-line JSON dump (embedded in bench output / metrics context). */
    std::string toJson() const;
};

/**
 * Process-wide fault registry. First use captures SWORDFISH_FAULTS; tests
 * reconfigure via configure() (between evaluations — not thread-safe
 * against in-flight ones, by design).
 */
class FaultInjector
{
  public:
    static FaultInjector& instance();

    /** Replace the active configuration (tests / drivers). */
    void configure(const FaultConfig& cfg);

    /** Snapshot of the active configuration. */
    FaultConfig config() const;

    /** True when at least one site has a nonzero probability. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    std::size_t maxRetries() const;

    /**
     * Whether the fault at (site, key) fires: a pure function of
     * (seed, site, key). p=0 never fires, p=1 always fires.
     */
    bool fires(FaultSite site, std::uint64_t key) const;

    /**
     * Deterministic pick in [0, n) for a fired fault (e.g. which output
     * column sticks). Pure function of (seed, site, key). n must be > 0.
     */
    std::uint64_t draw(FaultSite site, std::uint64_t key,
                       std::uint64_t n) const;

    /**
     * Key for retry attempt `attempt` (>= 1) of a transient fault on
     * `read_stream`; also used as the fresh conversion-noise stream of the
     * retried attempt, so a retry re-executes with new noise.
     */
    static std::uint64_t retryStream(std::uint64_t read_stream,
                                     std::size_t attempt);

    /**
     * Stable key for a service entity named by a string (job id, spool
     * file name): FNV-1a over the bytes, so a chaos schedule keyed on it
     * replays identically across daemon restarts and machines.
     */
    static std::uint64_t serviceKey(const std::string& name);

    FaultInjector(const FaultInjector&) = delete;
    FaultInjector& operator=(const FaultInjector&) = delete;

  private:
    FaultInjector();

    // The config is written only by configure() (between evaluations) and
    // read through an immutable snapshot pointer; swap + acquire/release
    // keeps readers tear-free without a lock in the fires() hot path.
    std::atomic<const FaultConfig*> cfg_;
    std::atomic<bool> enabled_{false};
};

/** Shorthand for FaultInjector::instance(). */
FaultInjector& faultInjector();

/** RAII config swap for tests: restores the previous config on scope exit. */
class ScopedFaultConfig
{
  public:
    explicit ScopedFaultConfig(const FaultConfig& cfg)
        : prev_(faultInjector().config())
    {
        faultInjector().configure(cfg);
    }

    ~ScopedFaultConfig() { faultInjector().configure(prev_); }

    ScopedFaultConfig(const ScopedFaultConfig&) = delete;
    ScopedFaultConfig& operator=(const ScopedFaultConfig&) = delete;

  private:
    FaultConfig prev_;
};

/** Env var naming the fault spec ("" / unset disables injection). */
inline constexpr const char* kFaultsEnv = "SWORDFISH_FAULTS";

/** Env var naming the service chaos spec, appended after SWORDFISH_FAULTS
 *  (same grammar; later tokens win). */
inline constexpr const char* kChaosEnv = "SWORDFISH_CHAOS";

} // namespace swordfish

#endif // SWORDFISH_UTIL_FAULT_H
