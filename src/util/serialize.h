/**
 * @file
 * Tiny binary serialization helpers for model / artifact caching.
 *
 * The format is a flat little-endian stream with a magic header; it is only
 * intended for same-machine artifact caching, not interchange.
 */

#ifndef SWORDFISH_UTIL_SERIALIZE_H
#define SWORDFISH_UTIL_SERIALIZE_H

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "logging.h"

namespace swordfish {

/** Binary output stream wrapper with typed put helpers. */
class BinaryWriter
{
  public:
    /** Open the file for writing; fatal() on failure. */
    explicit BinaryWriter(const std::string& path)
        : out_(path, std::ios::binary)
    {
        if (!out_)
            fatal("BinaryWriter: cannot open ", path);
        putU64(kMagic);
    }

    void
    putU64(std::uint64_t v)
    {
        out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
    }

    void
    putI64(std::int64_t v)
    {
        out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
    }

    void
    putF64(double v)
    {
        out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
    }

    template <typename Alloc>
    void
    putFloats(const std::vector<float, Alloc>& v)
    {
        putU64(v.size());
        // Empty vectors have a null data() pointer; ostream::write with a
        // null pointer is UB even for a zero count.
        if (!v.empty())
            out_.write(reinterpret_cast<const char*>(v.data()),
                       static_cast<std::streamsize>(v.size()
                                                    * sizeof(float)));
    }

    /** Non-template overload so brace-enclosed literals still work. */
    void
    putFloats(const std::vector<float>& v)
    {
        putFloats<std::vector<float>::allocator_type>(v);
    }

    void
    putString(const std::string& s)
    {
        putU64(s.size());
        if (!s.empty())
            out_.write(s.data(), static_cast<std::streamsize>(s.size()));
    }

    /** True when all writes so far succeeded. */
    bool good() const { return static_cast<bool>(out_); }

    /** Flush and close the stream; true when every write landed. */
    bool
    close()
    {
        out_.flush();
        const bool ok = static_cast<bool>(out_);
        out_.close();
        return ok && static_cast<bool>(out_);
    }

    static constexpr std::uint64_t kMagic = 0x53574f5244462331ULL; // "SWORDF#1"

  private:
    std::ofstream out_;
};

/** Binary input stream wrapper mirroring BinaryWriter. */
class BinaryReader
{
  public:
    /** Open and validate the magic header; ok() reports success. */
    explicit BinaryReader(const std::string& path)
        : in_(path, std::ios::binary)
    {
        if (in_) {
            in_.seekg(0, std::ios::end);
            const auto end = in_.tellg();
            in_.seekg(0, std::ios::beg);
            fileSize_ = end < 0 ? 0 : static_cast<std::uint64_t>(end);
        }
        if (in_ && getU64() != BinaryWriter::kMagic)
            in_.setstate(std::ios::failbit);
    }

    /** True when the file opened and the header matched. */
    bool ok() const { return static_cast<bool>(in_); }

    std::uint64_t
    getU64()
    {
        std::uint64_t v = 0;
        in_.read(reinterpret_cast<char*>(&v), sizeof(v));
        return v;
    }

    std::int64_t
    getI64()
    {
        std::int64_t v = 0;
        in_.read(reinterpret_cast<char*>(&v), sizeof(v));
        return v;
    }

    double
    getF64()
    {
        double v = 0;
        in_.read(reinterpret_cast<char*>(&v), sizeof(v));
        return v;
    }

    std::vector<float>
    getFloats()
    {
        const std::uint64_t n = getU64();
        // Bound the size prefix against the bytes actually left in the
        // file: a corrupt/truncated artifact must fail cleanly instead of
        // attempting a multi-gigabyte allocation.
        if (!in_ || n > remainingBytes() / sizeof(float)) {
            in_.setstate(std::ios::failbit);
            return {};
        }
        std::vector<float> v(static_cast<std::size_t>(n));
        if (!v.empty())
            in_.read(reinterpret_cast<char*>(v.data()),
                     static_cast<std::streamsize>(v.size()
                                                  * sizeof(float)));
        return v;
    }

    std::string
    getString()
    {
        const std::uint64_t n = getU64();
        if (!in_ || n > remainingBytes()) {
            in_.setstate(std::ios::failbit);
            return {};
        }
        std::string s(static_cast<std::size_t>(n), '\0');
        if (!s.empty())
            in_.read(s.data(), static_cast<std::streamsize>(s.size()));
        return s;
    }

  private:
    /** Bytes between the read cursor and end of file (0 when failed). */
    std::uint64_t
    remainingBytes()
    {
        if (!in_)
            return 0;
        const auto pos = in_.tellg();
        if (pos < 0 || static_cast<std::uint64_t>(pos) > fileSize_)
            return 0;
        return fileSize_ - static_cast<std::uint64_t>(pos);
    }

    std::ifstream in_;
    std::uint64_t fileSize_ = 0;
};

/** The sibling temp-file path the atomic writers stage `path` through. */
std::string atomicTempPath(const std::string& path);

/**
 * True when an fsync errno means the filesystem cannot sync that object
 * kind at all (EINVAL / ENOTSUP / EOPNOTSUPP — e.g. directory fsync on
 * some network or FUSE filesystems) rather than that a sync was lost.
 * Benign errnos must not fail an atomic commit, or spool writes would be
 * impossible on those filesystems.
 */
bool fsyncErrnoIsBenign(int err);

/**
 * fsync the directory entry at `dir` so a rename into it survives power
 * loss. Returns true on success or a benign unsupported-operation errno
 * (see fsyncErrnoIsBenign); false when the directory cannot be opened or
 * the sync genuinely failed.
 */
bool fsyncDirectory(const std::string& dir);

/**
 * Durably move `temp_path` over `path`: fsync the temp file's bytes,
 * rename it into place, then fsync the containing directory so the rename
 * survives a crash. A failure at any point removes the temp file and
 * leaves whatever was previously at `path` untouched. Returns success.
 */
bool atomicCommitFile(const std::string& temp_path, const std::string& path);

/**
 * Write `contents` to `path` atomically (temp file in the same directory +
 * fsync + rename): a crash can leave the old file or the new one at
 * `path`, never a torn mix. Returns false on any I/O failure, in which
 * case `path` is untouched.
 */
bool atomicWriteFile(const std::string& path, const std::string& contents);

/**
 * BinaryWriter variant with atomic-replace semantics: all puts go to a
 * sibling temp file; commit() fsyncs and renames it over `path`. Without a
 * successful commit() the destructor removes the temp file and `path` is
 * never touched — checkpoints written through this can always be trusted.
 */
class AtomicBinaryWriter
{
  public:
    explicit AtomicBinaryWriter(const std::string& path);
    ~AtomicBinaryWriter();

    /** The staged stream; magic header already written. */
    BinaryWriter& writer() { return writer_; }

    /** Flush + fsync + rename into place; false leaves `path` untouched. */
    bool commit();

    AtomicBinaryWriter(const AtomicBinaryWriter&) = delete;
    AtomicBinaryWriter& operator=(const AtomicBinaryWriter&) = delete;

  private:
    std::string path_;
    std::string tempPath_;
    BinaryWriter writer_;
    bool committed_ = false;
    bool committedOk_ = false;
};

} // namespace swordfish

#endif // SWORDFISH_UTIL_SERIALIZE_H
