#include "env.h"

#include <sstream>
#include <thread>

namespace swordfish {

namespace {

std::string
envString(const char* name)
{
    const char* v = std::getenv(name);
    return v == nullptr ? std::string() : std::string(v);
}

/** Escape the two characters that can break a JSON string literal. */
std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

std::size_t
RuntimeConfig::poolThreads() const
{
    if (threads >= 0)
        return static_cast<std::size_t>(threads);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

std::string
RuntimeConfig::toJson() const
{
    std::ostringstream out;
    out << "{\"threads\":" << threads << ",\"batch\":" << batch
        << ",\"fast\":" << (fast ? "true" : "false")
        << ",\"eval_reads\":" << evalReads << ",\"eval_runs\":" << evalRuns
        << ",\"retrain_epochs\":" << retrainEpochs << ",\"metrics_out\":\""
        << jsonEscape(metricsOut) << "\",\"artifacts\":\""
        << jsonEscape(artifacts) << "\",\"faults\":\""
        << jsonEscape(faults) << "\",\"refresh\":\""
        << jsonEscape(refresh) << "\",\"simd\":\""
        << jsonEscape(simd) << "\",\"backend\":\""
        << jsonEscape(backend) << "\"}";
    return out.str();
}

RuntimeConfig
RuntimeConfig::fromEnvironment()
{
    RuntimeConfig cfg;
    cfg.threads = envLong("SWORDFISH_THREADS", -1);
    cfg.batch = envLong("SWORDFISH_BATCH", -1);
    cfg.fast = envFlag("SWORDFISH_FAST");
    cfg.evalReads = envLong("SWORDFISH_EVAL_READS", -1);
    cfg.evalRuns = envLong("SWORDFISH_EVAL_RUNS", -1);
    cfg.retrainEpochs = envLong("SWORDFISH_RETRAIN_EPOCHS", -1);
    cfg.metricsOut = envString("SWORDFISH_METRICS_OUT");
    cfg.artifacts = envString("SWORDFISH_ARTIFACTS");
    cfg.faults = envString("SWORDFISH_FAULTS");
    cfg.refresh = envString("SWORDFISH_REFRESH");
    cfg.simd = envString("SWORDFISH_SIMD");
    cfg.backend = envString("SWORDFISH_BACKEND");
    return cfg;
}

const RuntimeConfig&
runtimeConfig()
{
    static const RuntimeConfig cfg = RuntimeConfig::fromEnvironment();
    return cfg;
}

} // namespace swordfish
