#include "env.h"

#include <thread>

#include "util/json.h"

namespace swordfish {

namespace {

std::string
envString(const char* name)
{
    const char* v = std::getenv(name);
    return v == nullptr ? std::string() : std::string(v);
}

} // namespace

std::size_t
RuntimeConfig::poolThreads() const
{
    if (threads >= 0)
        return static_cast<std::size_t>(threads);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

std::string
RuntimeConfig::toJson() const
{
    // Shared JSON writer so metrics snapshots, JobSpecs, and wire frames
    // all escape and format identically.
    return JsonWriter()
        .field("threads", static_cast<std::int64_t>(threads))
        .field("batch", static_cast<std::int64_t>(batch))
        .field("fast", fast)
        .field("eval_reads", static_cast<std::int64_t>(evalReads))
        .field("eval_runs", static_cast<std::int64_t>(evalRuns))
        .field("retrain_epochs", static_cast<std::int64_t>(retrainEpochs))
        .field("metrics_out", metricsOut)
        .field("artifacts", artifacts)
        .field("faults", faults)
        .field("chaos", chaos)
        .field("refresh", refresh)
        .field("simd", simd)
        .field("noise", noise)
        .field("backend", backend)
        .str();
}

RuntimeConfig
RuntimeConfig::fromEnvironment()
{
    RuntimeConfig cfg;
    cfg.threads = envLong("SWORDFISH_THREADS", -1);
    cfg.batch = envLong("SWORDFISH_BATCH", -1);
    cfg.fast = envFlag("SWORDFISH_FAST");
    cfg.evalReads = envLong("SWORDFISH_EVAL_READS", -1);
    cfg.evalRuns = envLong("SWORDFISH_EVAL_RUNS", -1);
    cfg.retrainEpochs = envLong("SWORDFISH_RETRAIN_EPOCHS", -1);
    cfg.metricsOut = envString("SWORDFISH_METRICS_OUT");
    cfg.artifacts = envString("SWORDFISH_ARTIFACTS");
    cfg.faults = envString("SWORDFISH_FAULTS");
    cfg.chaos = envString("SWORDFISH_CHAOS");
    cfg.refresh = envString("SWORDFISH_REFRESH");
    cfg.simd = envString("SWORDFISH_SIMD");
    cfg.noise = envString("SWORDFISH_NOISE");
    cfg.backend = envString("SWORDFISH_BACKEND");
    return cfg;
}

const RuntimeConfig&
runtimeConfig()
{
    static const RuntimeConfig cfg = RuntimeConfig::fromEnvironment();
    return cfg;
}

} // namespace swordfish
