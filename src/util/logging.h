/**
 * @file
 * Minimal leveled logging for the framework.
 *
 * Follows the gem5 philosophy: fatal() for user errors that make continuing
 * impossible, panic() for internal invariant violations, warn()/inform() for
 * status. Output goes to stderr so bench tables on stdout stay clean.
 */

#ifndef SWORDFISH_UTIL_LOGGING_H
#define SWORDFISH_UTIL_LOGGING_H

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace swordfish {

/** Log verbosity levels, ordered by severity. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Silent = 4 };

/** Global log-level accessor; default Info, override via SWORDFISH_LOG. */
LogLevel logLevel();

/** Set the global log level programmatically. */
void setLogLevel(LogLevel level);

namespace detail {
void emit(LogLevel level, const std::string& msg);
} // namespace detail

/** Informational status message (Info level). */
template <typename... Args>
void
inform(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << args);
    detail::emit(LogLevel::Info, oss.str());
}

/** Debug chatter, off by default. */
template <typename... Args>
void
debugLog(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << args);
    detail::emit(LogLevel::Debug, oss.str());
}

/** Something works but not as well as it should. */
template <typename... Args>
void
warn(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << args);
    detail::emit(LogLevel::Warn, oss.str());
}

/** Unrecoverable user-level error: print and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << args);
    detail::emit(LogLevel::Error, "fatal: " + oss.str());
    std::exit(1);
}

/** Internal invariant violation: print and abort(). */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << args);
    detail::emit(LogLevel::Error, "panic: " + oss.str());
    std::abort();
}

} // namespace swordfish

#endif // SWORDFISH_UTIL_LOGGING_H
