/**
 * @file
 * End-to-end basecalling demo on the genomics substrate: simulate a read's
 * raw nanopore signal, basecall it with the trained network (greedy and
 * beam decoders), align the call against the ground truth, and print a
 * BLAST-style summary — the workload the paper's introduction motivates.
 *
 * Run: ./build/examples/basecall_demo [dataset_id] [read_index]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/swordfish.h"
#include "genomics/mapper.h"

using namespace swordfish;
using namespace swordfish::core;

int
main(int argc, char** argv)
{
    const std::string dataset_id = argc > 1 ? argv[1] : "D1";
    const std::size_t read_index = argc > 2
        ? static_cast<std::size_t>(std::atol(argv[2])) : 0;

    ExperimentContext ctx;
    auto& model = ctx.teacher();
    const auto& ds = ctx.dataset(dataset_id);
    if (read_index >= ds.reads.size()) {
        std::fprintf(stderr, "read index %zu out of range (%zu reads)\n",
                     read_index, ds.reads.size());
        return 1;
    }
    const auto& read = ds.reads[read_index];

    std::printf("Dataset %s (%s), read %zu: %zu bases, %zu raw samples\n",
                ds.spec.id.c_str(), ds.spec.organism.c_str(), read_index,
                read.bases.size(), read.signal.size());

    for (auto decoder : {basecall::Decoder::Greedy,
                         basecall::Decoder::Beam}) {
        const auto called = basecall::basecallRead(model, read, decoder);
        const auto aln = genomics::alignGlobal(called, read.bases);
        std::printf("\n%s decode: %zu bases called\n",
                    decoder == basecall::Decoder::Greedy ? "Greedy"
                                                         : "Beam",
                    called.size());
        std::printf("  identity %.2f%%  (match %zu, mismatch %zu, "
                    "ins %zu, del %zu over %zu columns)\n",
                    100.0 * aln.identity(), aln.matches, aln.mismatches,
                    aln.insertions, aln.deletions, aln.alignmentLength);
        std::printf("  first 60 called bases: %.60s\n",
                    genomics::toString(called).c_str());
        std::printf("  first 60 truth bases:  %.60s\n",
                    genomics::toString(read.bases).c_str());
    }

    // Locate the read on the reference with the seed-and-extend mapper.
    genomics::ReadMapper mapper(ds.reference);
    const auto called = basecall::basecallRead(model, read);
    const auto mapping = mapper.map(called);
    if (mapping.mapped) {
        std::printf("\nMapped to reference at ~%zu (truth %zu), "
                    "identity %.2f%%, %zu supporting seeds\n",
                    mapping.refStart, read.refStart,
                    100.0 * mapping.identity, mapping.seedCount);
    } else {
        std::printf("\nRead did not map (unexpected for a healthy "
                    "basecaller)\n");
    }
    return 0;
}
