/**
 * @file
 * Design-space exploration: the kind of study Swordfish exists for.
 *
 * Sweeps crossbar size x ADC resolution and reports accuracy, throughput,
 * and area for each point, so a designer can pick the configuration that
 * meets an accuracy floor at the best performance/area. (Paper Section 6:
 * "Swordfish enables the designer to rigorously explore" these tradeoffs.)
 *
 * Run: ./build/examples/design_space_explorer [accuracy_floor_percent]
 */

#include <cstdio>
#include <cstdlib>

#include "core/swordfish.h"
#include "util/table.h"

using namespace swordfish;
using namespace swordfish::core;

int
main(int argc, char** argv)
{
    const double floor_pct = argc > 1 ? std::atof(argv[1]) : 90.0;

    ExperimentContext ctx;
    auto student = quantizeModel(ctx.teacher(), QuantConfig::deployment());
    const auto& ds = ctx.dataset("D1");

    std::printf("Design-space exploration (accuracy floor %.1f%%)\n\n",
                floor_pct);

    TextTable table;
    table.header({"Crossbar", "ADC bits", "Accuracy", "Kbp/s", "mm^2",
                  "Meets floor"});

    const arch::TimingParams timing;
    arch::WorkloadProfile workload;
    workload.samplesPerBase = ds.spec.signal.dwellMean;

    for (std::size_t size : {std::size_t{64}, std::size_t{256}}) {
        for (int adc_bits : {6, 7, 8}) {
            NonIdealityConfig scenario;
            scenario.kind = NonIdealityKind::Combined;
            scenario.crossbar.size = size;
            scenario.crossbar.adc.bits = adc_bits;

            const auto acc = evaluateNonIdealAccuracy(
                student, scenario, EvalOptions(ds).runs(2).maxReads(6));

            auto map = arch::buildPartitionMap(student, size);
            const auto thr = arch::estimateThroughput(
                arch::Variant::Ideal, map, timing, workload);
            const auto area = arch::computeArea(map, arch::AreaParams{},
                                                0.0);
            table.row({scenario.crossbar.describe(),
                       std::to_string(adc_bits),
                       TextTable::num(acc.mean * 100.0, 2) + "%",
                       TextTable::num(thr.kbps, 0),
                       TextTable::num(area.totalMm2, 3),
                       acc.mean * 100.0 >= floor_pct ? "yes" : "no"});
            std::fflush(stdout);
        }
    }
    table.print();
    std::printf("\nHigher ADC resolution buys accuracy at area cost; "
                "smaller crossbars are more robust but need more tiles.\n");
    return 0;
}
