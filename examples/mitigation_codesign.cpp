/**
 * @file
 * HW/SW co-design walkthrough: given a target accuracy, evaluate the
 * mitigation ladder (nothing -> VAT -> KD -> R-V-W -> RSA+KD -> All) under
 * measured non-idealities and report the accuracy/throughput cost of each
 * rung — the decision the paper's Section 6 asks designers to make.
 *
 * Run: ./build/examples/mitigation_codesign [target_accuracy_percent]
 */

#include <cstdio>
#include <cstdlib>

#include "core/swordfish.h"
#include "util/table.h"

using namespace swordfish;
using namespace swordfish::core;

namespace {

arch::Variant
variantFor(Technique tech)
{
    switch (tech) {
      case Technique::None: return arch::Variant::Ideal;
      case Technique::Rvw: return arch::Variant::RealisticRvw;
      case Technique::Rsa: return arch::Variant::RealisticRsa;
      case Technique::RsaKd: return arch::Variant::RealisticRsaKd;
      case Technique::All: return arch::Variant::RealisticRsaKd;
      default: return arch::Variant::Ideal; // VAT/KD: offline only
    }
}

} // namespace

int
main(int argc, char** argv)
{
    const double target_pct = argc > 1 ? std::atof(argv[1]) : 92.0;

    ExperimentContext ctx;
    const auto& ds = ctx.dataset("D2");
    NonIdealityConfig scenario;
    scenario.kind = NonIdealityKind::Measured;
    scenario.crossbar.size = 64;

    auto map = arch::buildPartitionMap(ctx.teacher(), 64);
    const arch::TimingParams timing;
    arch::WorkloadProfile workload;
    workload.samplesPerBase = ds.spec.signal.dwellMean;
    const double gpu_kbps = arch::estimateThroughput(
        arch::Variant::BonitoGpu, map, timing, workload).kbps;

    std::printf("Mitigation co-design for target accuracy %.1f%% "
                "(Measured non-idealities, 64x64, dataset %s)\n\n",
                target_pct, ds.spec.id.c_str());

    TextTable table;
    table.header({"Mitigation", "Accuracy", "Kbp/s", "vs GPU",
                  "Meets target"});

    Technique chosen = Technique::None;
    double chosen_kbps = -1.0;
    bool found = false;
    for (auto tech : {Technique::None, Technique::Vat, Technique::Kd,
                      Technique::Rvw, Technique::RsaKd, Technique::All}) {
        EnhancerConfig ec;
        ec.technique = tech;
        ec.retrainEpochs = 1;
        auto enhanced = ctx.enhanced(scenario, ec);
        const auto acc = evaluateNonIdealAccuracy(
            enhanced.model, {enhanced.evalConfig, enhanced.remap},
            EvalOptions(ds).runs(2).maxReads(6));
        const auto thr = arch::estimateThroughput(
            variantFor(tech), map, timing, workload);
        const bool meets = acc.mean * 100.0 >= target_pct;
        if (meets && thr.kbps > chosen_kbps) {
            chosen = tech;
            chosen_kbps = thr.kbps;
            found = true;
        }
        table.row({techniqueName(tech),
                   TextTable::num(acc.mean * 100.0, 2) + "%",
                   TextTable::num(thr.kbps, 1),
                   TextTable::num(thr.kbps / gpu_kbps, 2) + "x",
                   meets ? "yes" : "no"});
        std::fflush(stdout);
    }
    table.print();

    if (found) {
        std::printf("\nFastest mitigation meeting the target: %s "
                    "(%.1f Kbp/s)\n",
                    techniqueName(chosen), chosen_kbps);
    } else {
        std::printf("\nNo evaluated mitigation meets %.1f%% — consider a "
                    "smaller crossbar, a better device, or a larger SRAM "
                    "fraction (see fig15_area_accuracy).\n", target_pct);
    }
    return 0;
}
