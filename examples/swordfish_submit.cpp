/**
 * @file
 * swordfish_submit — example swordfishd client.
 *
 * Builds a JobSpec from a few command-line knobs (or reads one as JSON
 * from a file), submits it to a running daemon, then streams per-block
 * progress until the job finishes and prints the final status.
 *
 *   swordfishd --socket /tmp/swordfish.sock --spool /tmp/spool &
 *   swordfish_submit --socket /tmp/swordfish.sock \
 *       --kind nonideal --dataset D1 --scenario combined --runs 3
 *   swordfish_submit --socket /tmp/swordfish.sock --spec job.json
 */

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>

#include "service/client.h"
#include "service/job_spec.h"
#include "service/wire.h"
#include "util/json.h"

using namespace swordfish;

namespace {

void
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [--spec FILE.json]\n"
        "          [--kind eval|nonideal|quantized|pipeline]\n"
        "          [--dataset D1..D4] [--reads N] [--scenario KIND]\n"
        "          [--crossbar N] [--runs N] [--seed N] [--backend SEL]\n",
        argv0);
}

bool
sendAndReceive(service::ServiceClient& client, const std::string& request,
               JsonValue& reply)
{
    if (!client.sendLine(request)) {
        std::fprintf(stderr, "swordfish_submit: send failed: %s\n",
                     client.lastError().c_str());
        return false;
    }
    std::string line;
    if (client.recvLine(line, 10000) != service::RecvStatus::Line) {
        std::fprintf(stderr,
                     "swordfish_submit: no reply from daemon (%s)\n",
                     client.lastError().c_str());
        return false;
    }
    if (JsonValue::parse(line, reply)) {
        std::fprintf(stderr, "swordfish_submit: bad reply: %s\n",
                     line.c_str());
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string socket_path;
    std::string spec_file;
    service::JobSpec spec;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        }
        const char* value = (i + 1 < argc) ? argv[i + 1] : nullptr;
        if (value == nullptr) {
            std::fprintf(stderr, "swordfish_submit: %s needs a value\n",
                         arg.c_str());
            return 2;
        }
        if (arg == "--socket")
            socket_path = value;
        else if (arg == "--spec")
            spec_file = value;
        else if (arg == "--kind") {
            service::JobKind kind;
            if (!service::parseJobKind(value, kind)) {
                std::fprintf(stderr,
                             "swordfish_submit: unknown kind '%s'\n",
                             value);
                return 2;
            }
            spec.kind = kind;
        } else if (arg == "--dataset")
            spec.datasetId = value;
        else if (arg == "--reads")
            spec.datasetReads = std::strtoull(value, nullptr, 10);
        else if (arg == "--scenario")
            spec.scenarioKind = value;
        else if (arg == "--crossbar")
            spec.crossbarSize = std::strtoull(value, nullptr, 10);
        else if (arg == "--runs")
            spec.request.runs = std::strtoull(value, nullptr, 10);
        else if (arg == "--seed")
            spec.request.seedBase = std::strtoull(value, nullptr, 10);
        else if (arg == "--backend")
            spec.request.backend = value;
        else {
            std::fprintf(stderr, "swordfish_submit: unknown option '%s'\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
        ++i;
    }
    if (socket_path.empty()) {
        usage(argv[0]);
        return 2;
    }
    if (!spec_file.empty()) {
        std::ifstream in(spec_file);
        if (!in) {
            std::fprintf(stderr, "swordfish_submit: cannot read %s\n",
                         spec_file.c_str());
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        if (const basecall::JobError err =
                service::JobSpec::fromJson(text.str(), spec)) {
            std::fprintf(stderr, "swordfish_submit: bad spec: %s\n",
                         err.message.c_str());
            return 2;
        }
    }

    service::ServiceClient client(socket_path);
    if (!client.connected()) {
        std::fprintf(stderr,
                     "swordfish_submit: cannot connect to %s "
                     "(is swordfishd running?)\n",
                     socket_path.c_str());
        return 1;
    }

    // Submit, honoring overload shedding: the daemon's retry_after_ms
    // hint is scaled by a random jitter factor so a herd of shed clients
    // does not reconverge on the same instant.
    const std::string submit = std::string("{\"op\":\"submit\",\"spec\":")
        + spec.toJson() + "}";
    std::mt19937 rng(static_cast<std::uint32_t>(::getpid()));
    std::uniform_real_distribution<double> jitter(0.5, 1.5);
    JsonValue reply;
    std::string id;
    for (int attempt = 0;; ++attempt) {
        if (!sendAndReceive(client, submit, reply))
            return 1;
        if (reply.get("ok").asBool(false)) {
            id = reply.get("id").asString();
            break;
        }
        if (reply.get("error").asString() == "overloaded" && attempt < 5) {
            const std::uint64_t wait = static_cast<std::uint64_t>(
                static_cast<double>(
                    reply.get("retry_after_ms").asU64(1000))
                * jitter(rng));
            std::fprintf(stderr,
                         "swordfish_submit: daemon overloaded; retrying "
                         "in %llu ms\n",
                         static_cast<unsigned long long>(wait));
            std::this_thread::sleep_for(std::chrono::milliseconds(wait));
            continue;
        }
        std::fprintf(stderr, "swordfish_submit: rejected: %s (%s)\n",
                     reply.get("message").asString().c_str(),
                     reply.get("error").asString().c_str());
        return 1;
    }
    std::printf("submitted %s\n", id.c_str());

    // Stream progress until done. Each reply line is either an event or
    // the terminal done+status line.
    if (!client.sendLine("{\"op\":\"stream\",\"id\":\"" + id
                         + "\",\"from\":0}")) {
        std::fprintf(stderr, "swordfish_submit: send failed\n");
        return 1;
    }
    std::string line;
    while (client.recvLine(line, 120000) == service::RecvStatus::Line) {
        JsonValue msg;
        if (JsonValue::parse(line, msg))
            continue;
        if (!msg.get("ok").asBool(false)) {
            std::fprintf(stderr, "swordfish_submit: stream error: %s\n",
                         msg.get("message").asString().c_str());
            return 1;
        }
        if (msg.has("event")) {
            const JsonValue& ev = msg.get("event");
            std::printf("  run %llu: %llu/%llu reads, identity %.4f\n",
                        static_cast<unsigned long long>(
                            ev.get("run").asU64()),
                        static_cast<unsigned long long>(
                            ev.get("done").asU64()),
                        static_cast<unsigned long long>(
                            ev.get("total").asU64()),
                        ev.get("mean_identity").asDouble(0.0));
            continue;
        }
        if (msg.get("done").asBool(false)) {
            const JsonValue& status = msg.get("status");
            std::printf("%s: %s\n", id.c_str(),
                        status.get("state").asString().c_str());
            if (status.has("result")) {
                const JsonValue& result = status.get("result");
                std::printf("  mean identity %.4f (stddev %.4f, %llu "
                            "run(s))\n",
                            result.get("mean").asDouble(0.0),
                            result.get("stddev").asDouble(0.0),
                            static_cast<unsigned long long>(
                                result.get("runs").asU64()));
            }
            return 0;
        }
    }
    std::fprintf(stderr,
                 "swordfish_submit: stream ended unexpectedly (%s)\n",
                 client.lastError().c_str());
    return 1;
}
