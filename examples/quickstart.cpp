/**
 * @file
 * Quickstart: the complete Swordfish flow in ~60 lines.
 *
 *  1. Get a trained FP32 basecaller (trained once, cached in artifacts/).
 *  2. Quantize it for deployment (FPP 16-16).
 *  3. Partition & map it onto 64x64 memristor crossbars.
 *  4. Evaluate basecalling accuracy under combined non-idealities.
 *  5. Apply the RSA+KD mitigation and evaluate again.
 *  6. Report throughput and area from the architecture model.
 *
 * Build and run:   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/swordfish.h"

using namespace swordfish;
using namespace swordfish::core;

int
main()
{
    // 1. Teacher basecaller (BonitoLite: Conv -> 3x LSTM -> Linear, CTC).
    ExperimentContext ctx;
    auto& teacher = ctx.teacher();
    const auto& d1 = ctx.dataset("D1");
    const auto baseline = basecall::evaluateAccuracy(teacher, d1, 8);
    std::printf("FP32 baseline read accuracy on %s: %.2f%%\n",
                d1.spec.id.c_str(), 100.0 * baseline.meanIdentity);

    // 2. Deployment quantization (the paper settles on 16-bit fixed).
    auto student = quantizeModel(teacher, QuantConfig::deployment());

    // 3. Partition & map onto crossbars.
    const auto map = arch::buildPartitionMap(student, 64);
    std::printf("\n%s\n", map.describe().c_str());

    // 4. Accuracy with all analytical non-idealities, no mitigation.
    NonIdealityConfig scenario; // defaults: Combined, 64x64, 10% write var
    const auto unmitigated = evaluateNonIdealAccuracy(
        student, scenario, EvalOptions(d1).runs(3).maxReads(8));
    std::printf("Unmitigated on non-ideal crossbars: %.2f%% (+-%.2f%%)\n",
                100.0 * unmitigated.mean, 100.0 * unmitigated.stddev);

    // 5. Mitigate with RSA+KD (online retraining, 5% of weights in SRAM).
    EnhancerConfig enh;
    enh.technique = Technique::RsaKd;
    enh.retrainEpochs = 1;
    auto enhanced = ctx.enhanced(scenario, enh);
    const auto mitigated = evaluateNonIdealAccuracy(
        enhanced.model, {enhanced.evalConfig, enhanced.remap},
        EvalOptions(d1).runs(3).maxReads(8));
    std::printf("With RSA+KD mitigation:            %.2f%% (+-%.2f%%)\n",
                100.0 * mitigated.mean, 100.0 * mitigated.stddev);

    // 6. Throughput and area from the architecture model.
    const arch::TimingParams timing;
    arch::WorkloadProfile workload;
    workload.samplesPerBase = d1.spec.signal.dwellMean;
    const auto gpu = arch::estimateThroughput(
        arch::Variant::BonitoGpu, map, timing, workload);
    const auto accel = arch::estimateThroughput(
        arch::Variant::RealisticRsaKd, map, timing, workload);
    const auto area = arch::computeArea(map, arch::AreaParams{}, 0.05);
    std::printf("\nThroughput: Bonito-GPU %.1f Kbp/s, "
                "Realistic-SwordfishAccel-RSA+KD %.1f Kbp/s (%.1fx)\n",
                gpu.kbps, accel.kbps, accel.kbps / gpu.kbps);
    std::printf("Accelerator area: %.3f mm^2 (SRAM share %.1f%%)\n",
                area.totalMm2, 100.0 * area.sramFraction());
    return 0;
}
