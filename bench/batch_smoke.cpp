/**
 * @file
 * CI smoke test for the batched crossbar inference engine: the batched
 * paths must be bitwise identical to the serial ones (any batch size,
 * full and ragged groups, non-ideal and quantized backends), and the
 * architecture model must credit batching with a faster pipeline step.
 * Exits non-zero on any failure so ctest catches a broken batcher.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "arch/partition.h"
#include "arch/throughput.h"
#include "basecall/basecaller.h"
#include "basecall/bonito_lite.h"
#include "core/deploy.h"
#include "core/evaluator.h"
#include "core/nonideality.h"
#include "core/vmm_backend.h"
#include "genomics/dataset.h"
#include "util/thread_pool.h"

using namespace swordfish;
using namespace swordfish::core;

namespace {

int failures = 0;

void
check(bool ok, const std::string& what)
{
    if (!ok) {
        std::fprintf(stderr, "batch_smoke: FAIL: %s\n", what.c_str());
        ++failures;
    }
}

std::uint64_t
bits(double v)
{
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

} // namespace

int
main()
{
    basecall::BonitoLiteConfig cfg;
    cfg.convChannels = 8;
    cfg.lstmHidden = 8;
    cfg.lstmLayers = 1;
    nn::SequenceModel model = basecall::buildBonitoLite(cfg);

    const genomics::PoreModel pore;
    const genomics::Dataset dataset =
        genomics::makeDataset(genomics::specById("D1"), pore, 4);

    NonIdealityConfig scenario;
    scenario.kind = NonIdealityKind::Combined;
    scenario.crossbar.size = 64;

    // 1. Non-ideal Monte-Carlo evaluation: batch 1 vs 3 (ragged {3, 1})
    //    vs 4 must agree bit for bit.
    auto eval_b = [&](std::size_t batch) {
        return evaluateNonIdealAccuracy(
            model, scenario,
            EvalOptions(dataset).runs(1).maxReads(4).seedBase(21)
                .batch(batch).threads(0));
    };
    const auto b1 = eval_b(1);
    const auto b3 = eval_b(3);
    const auto b4 = eval_b(4);
    check(bits(b1.mean) == bits(b3.mean),
          "non-ideal mean differs between batch 1 and 3");
    check(bits(b1.mean) == bits(b4.mean),
          "non-ideal mean differs between batch 1 and 4");

    // 2. Per-call basecalls: batched groups vs the serial loop.
    CrossbarVmmBackend backend(scenario, 21);
    model.setBackend(&backend);
    std::vector<genomics::Sequence> serial;
    for (std::size_t i = 0; i < 4; ++i) {
        model.beginRead(i);
        serial.push_back(basecall::basecallRead(model, dataset.reads[i]));
    }
    const auto batched =
        basecall::basecallBatch(model, dataset, {0, 1, 2, 3});
    check(batched.size() == 4, "basecallBatch returned wrong count");
    for (std::size_t i = 0; i < batched.size() && i < 4; ++i)
        check(batched[i] == serial[i],
              "batched basecall differs on read " + std::to_string(i));
    model.setBackend(nullptr);

    // 3. Quantized digital path: per-lane activation quantization keeps
    //    the batched result identical too.
    const QuantConfig quant{8, 8};
    auto eval_q = [&](std::size_t batch) {
        return evaluateQuantizedAccuracy(
            model, quant,
            EvalOptions(dataset).maxReads(4).batch(batch).threads(0));
    };
    check(bits(eval_q(1)) == bits(eval_q(3)),
          "quantized accuracy differs between batch 1 and 3");

    // 4. Architecture model: batching amortizes settle/DAC/digital time,
    //    so the batched pipeline step must be strictly faster, and the
    //    default (batch = 1) must match the explicit batch-1 call.
    const auto map = arch::buildPartitionMap(model, 64);
    const arch::TimingParams timing;
    check(bits(arch::pipelineStepNs(map, timing))
              == bits(arch::pipelineStepNs(map, timing, 1)),
          "pipelineStepNs default differs from batch=1");
    check(arch::pipelineStepNs(map, timing, 8)
              < arch::pipelineStepNs(map, timing, 1),
          "pipelineStepNs(batch=8) not faster than batch=1");

    if (failures == 0)
        std::printf("{\"bench\":\"batch_smoke\",\"status\":\"ok\"}\n");
    return failures == 0 ? 0 : 1;
}
