/**
 * @file
 * Fig. 15 reproduction: accuracy vs. area of Realistic-SwordfishAccel-
 * RSA+KD as the fraction of weights assigned to SRAM sweeps {0, 1, 5,
 * 10}%, for 64x64 and 256x256 crossbars (paper Section 5.6). Measured
 * non-idealities, 10% write variation. Pass --rsa-random to ablate the
 * error-profile knowledge (random cell selection, paper Section 3.4.4).
 */

#include <cstring>

#include "bench_common.h"

using namespace swordfish;
using namespace swordfish::bench;
using namespace swordfish::core;
using namespace swordfish::arch;

int
main(int argc, char** argv)
{
    const bool random_cells = argc > 1
        && std::strcmp(argv[1], "--rsa-random") == 0;

    banner(std::string("Fig. 15 - accuracy vs. area of "
                       "Realistic-SwordfishAccel-RSA+KD")
           + (random_cells ? " (random cell selection ablation)" : ""));

    ExperimentContext ctx;
    // Shared request proto: capped reads, 3 runs; dataset set per loop.
    const EvalRequest proto = benchEval(ctx.datasets().front(), 3, 8);
    const AreaParams area_params;

    std::printf("Original Bonito(Lite) accuracy (red dashed line): %s\n\n",
                pct(meanBaselineAccuracy(ctx)).c_str());

    for (std::size_t size : {std::size_t{64}, std::size_t{256}}) {
        std::printf("Crossbar %zux%zu:\n", size, size);
        NonIdealityConfig scenario;
        scenario.kind = NonIdealityKind::Measured;
        scenario.crossbar.size = size;

        auto map = buildPartitionMap(ctx.teacher(), size);

        TextTable table;
        table.header({"SRAM weights", "Accuracy", "Area (mm^2)",
                      "SRAM area share"});
        for (double frac : {0.0, 0.01, 0.05, 0.10}) {
            EnhancerConfig ec;
            ec.technique = Technique::RsaKd;
            ec.sramFraction = frac;
            ec.retrainEpochs = retrainEpochs();
            auto enhanced = ctx.enhanced(scenario, ec);
            enhanced.remap.useErrorKnowledge = !random_cells;

            const double acc = meanNonIdealAccuracy(
                enhanced.model, {enhanced.evalConfig, enhanced.remap},
                ctx.datasets(), proto);
            const auto area = computeArea(map, area_params, frac);
            table.row({pct(frac), pct(acc),
                       TextTable::num(area.totalMm2, 3),
                       pct(area.sramFraction())});
            std::fflush(stdout);
        }
        table.print();
        std::printf("\n");
    }
    std::printf("Paper shape: accuracy rises with SRAM fraction but "
                "saturates near 5%%, while SRAM area keeps growing; 5%% "
                "suffices to come within ~5%% of the baseline on 64x64.\n");
    return 0;
}
