/**
 * @file
 * Shared implementation of the Figs. 12/13 benches: accuracy of each
 * enhancement technique under each non-ideality group, averaged over the
 * datasets, one crossbar size per binary (paper Section 5.4.2; 10% write
 * variation, 5% of weights in SRAM for the RSA-based techniques).
 */

#ifndef SWORDFISH_BENCH_ENHANCE_NONIDEAL_TABLE_H
#define SWORDFISH_BENCH_ENHANCE_NONIDEAL_TABLE_H

#include "bench_common.h"

namespace swordfish::bench {

/** Run the Fig. 12/13 experiment for one crossbar size. */
inline int
runEnhanceNonIdealTable(std::size_t crossbar_size, const char* figure)
{
    using namespace swordfish::core;

    banner(std::string(figure)
           + " - enhancement vs. non-idealities, "
           + std::to_string(crossbar_size) + "x"
           + std::to_string(crossbar_size)
           + " (10% write var, 5% SRAM, dataset average)");

    ExperimentContext ctx;
    auto student = quantizeModel(ctx.teacher(), QuantConfig::deployment());
    // Shared request proto: capped reads, 3 runs; dataset set per loop.
    const EvalRequest proto = benchEval(ctx.datasets().front(), 3, 8);

    TextTable table;
    std::vector<std::string> header = {"Non-ideality", "No enh."};
    for (auto tech : figureTenSweep())
        header.push_back(techniqueName(tech));
    table.header(header);

    for (auto kind : figureEightSweep()) {
        NonIdealityConfig scenario;
        scenario.kind = kind;
        scenario.crossbar.size = crossbar_size;

        std::vector<std::string> row = {nonIdealityName(kind)};

        row.push_back(pct(meanNonIdealAccuracy(student, scenario,
                                               ctx.datasets(), proto)));
        std::fflush(stdout);

        for (auto tech : figureTenSweep()) {
            EnhancerConfig ec;
            ec.technique = tech;
            ec.retrainEpochs = retrainEpochs();
            auto enhanced = ctx.enhanced(scenario, ec);

            row.push_back(pct(meanNonIdealAccuracy(
                enhanced.model, {enhanced.evalConfig, enhanced.remap},
                ctx.datasets(), proto)));
            std::fflush(stdout);
        }
        table.row(row);
    }
    table.print();
    std::printf("\nPaper shape: techniques compose non-additively; "
                "effectiveness depends on the targeted non-ideality; "
                "recovery is larger on bigger crossbars because their "
                "un-mitigated loss is larger.\n");
    return 0;
}

} // namespace swordfish::bench

#endif // SWORDFISH_BENCH_ENHANCE_NONIDEAL_TABLE_H
