/**
 * @file
 * Fig. 7 reproduction: basecalling accuracy vs. write-variation rate for
 * D1-D4, error bars over repeated noisy model instantiations, no accuracy
 * enhancement (paper Section 5.2.1).
 */

#include "bench_common.h"

using namespace swordfish;
using namespace swordfish::bench;
using namespace swordfish::core;

int
main()
{
    banner("Fig. 7 - accuracy vs. write variation (no enhancement)");

    ExperimentContext ctx;
    auto student = quantizeModel(ctx.teacher(), QuantConfig::deployment());

    TextTable table;
    std::vector<std::string> header = {"Write variation"};
    for (const auto& ds : ctx.datasets())
        header.push_back(ds.spec.id);
    table.header(header);

    for (double rate : writeVariationSweep()) {
        std::vector<std::string> row = {pct(rate)};
        for (const auto& ds : ctx.datasets()) {
            const auto cfg = writeVariationScenario(rate);
            const auto s = evaluateNonIdealAccuracy(student, cfg,
                                                    benchEval(ds, 5));
            row.push_back(pctErr(s));
        }
        table.row(row);
        std::fflush(stdout);
    }
    table.print();
    std::printf("\nPaper shape: slight variation already costs accuracy; "
                "beyond ~10%% the loss becomes catastrophic, so later "
                "experiments assume a controlled 10%% rate.\n");
    return 0;
}
