/**
 * @file
 * Table 3 reproduction: basecalling accuracy after quantizing weights and
 * activations to each FPP X-Y configuration, for D1-D4 — no crossbar
 * non-idealities, no accuracy enhancement (paper Section 5.1).
 */

#include "bench_common.h"

using namespace swordfish;
using namespace swordfish::bench;
using namespace swordfish::core;

int
main()
{
    banner("Table 3 - accuracy after quantization (no enhancement)");

    ExperimentContext ctx;
    auto& teacher = ctx.teacher();
    const std::size_t reads = ExperimentContext::evalReads();

    const auto configs = QuantConfig::table3Sweep();
    TextTable table;
    std::vector<std::string> header = {"Dataset"};
    for (const auto& q : configs)
        header.push_back(q.name());
    table.header(header);

    for (const auto& ds : ctx.datasets()) {
        std::vector<std::string> row = {ds.spec.id};
        for (const auto& q : configs) {
            const double acc = evaluateQuantizedAccuracy(
                teacher, q, EvalOptions(ds).maxReads(reads));
            row.push_back(pct(acc));
        }
        table.row(row);
        std::fflush(stdout);
    }
    table.print();
    std::printf("\nPaper shape: lossless to 16 bits, < 9%% loss at 8 bits, "
                "unacceptable below 4 bits.\n");
    return 0;
}
