/**
 * @file
 * Fig. 1 reproduction: execution-time breakdown of the nanopore genome
 * analysis pipeline (basecalling -> read mapping -> consensus/polish),
 * reproducing the observation that basecalling dominates (>40%).
 */

#include "bench_common.h"

#include "basecall/pipeline.h"

using namespace swordfish;
using namespace swordfish::bench;

int
main()
{
    banner("Fig. 1 - genome analysis pipeline execution breakdown");

    core::ExperimentContext ctx;
    auto& model = ctx.teacher();
    const std::size_t reads = fastMode() ? 6 : 20;

    TextTable table;
    table.header({"Dataset", "Stage", "Seconds", "Fraction"});
    double basecall_fraction_sum = 0.0;
    std::size_t n = 0;
    for (const auto& ds : ctx.datasets()) {
        const auto report = basecall::runPipeline(
            model, core::EvalOptions(ds).maxReads(reads));
        for (const auto& stage : report.stages) {
            table.row({ds.spec.id, stage.name,
                       TextTable::num(stage.seconds, 3),
                       pct(stage.fractionOfTotal)});
            if (stage.name == "Basecalling")
                basecall_fraction_sum += stage.fractionOfTotal;
        }
        table.row({ds.spec.id, "(mapped " + pct(report.mappedFraction)
                   + ", map identity " + pct(report.meanMapIdentity) + ")",
                   "", ""});
        ++n;
    }
    table.print();
    std::printf("\nBasecalling fraction of pipeline time (mean): %s\n",
                pct(basecall_fraction_sum / static_cast<double>(n)).c_str());
    std::printf("Paper observation: basecalling dominates, > 40%%.\n");
    return 0;
}
