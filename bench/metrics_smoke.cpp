/**
 * @file
 * CI smoke test for the metrics/tracing exporter: runs a tiny end-to-end
 * slice of the framework (training epoch, full pipeline, one Monte-Carlo
 * evaluation run), exports the registry through the SWORDFISH_METRICS_OUT
 * path, and validates the emitted JSON — syntactic validity plus presence
 * and non-emptiness of every instrumented stage the acceptance criteria
 * name (chunk, vmm, program, ctc, align, mc_run). Exits non-zero on any
 * failure so ctest catches a broken exporter.
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "basecall/bonito_lite.h"
#include "basecall/chunker.h"
#include "basecall/pipeline.h"
#include "basecall/trainer.h"
#include "core/evaluator.h"
#include "core/nonideality.h"
#include "core/vmm_backend.h"
#include "genomics/dataset.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

using namespace swordfish;
using namespace swordfish::core;

namespace {

/**
 * Minimal recursive-descent JSON validator. Accepts the full JSON grammar
 * the exporter can produce (objects, arrays, strings, numbers, literals);
 * rejects trailing garbage and unterminated structures.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string& text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size()
               && (std::isdigit(static_cast<unsigned char>(s_[pos_]))
                   || s_[pos_] == '.' || s_[pos_] == 'e'
                   || s_[pos_] == 'E' || s_[pos_] == '+'
                   || s_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(const char* lit)
    {
        const std::string l(lit);
        if (s_.compare(pos_, l.size(), l) != 0)
            return false;
        pos_ += l.size();
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < s_.size()
               && (s_[pos_] == ' ' || s_[pos_] == '\n'
                   || s_[pos_] == '\t' || s_[pos_] == '\r'))
            ++pos_;
    }

    const std::string& s_;
    std::size_t pos_ = 0;
};

int failures = 0;

void
check(bool ok, const std::string& what)
{
    if (!ok) {
        std::fprintf(stderr, "metrics_smoke: FAIL: %s\n", what.c_str());
        ++failures;
    }
}

/** The span must exist in the JSON with a non-zero call count. */
void
checkSpanPresent(const std::string& json, const std::string& name)
{
    const std::string key = "\"" + name + "\":{\"calls\":";
    const std::size_t at = json.find(key);
    check(at != std::string::npos, "span '" + name + "' missing");
    if (at != std::string::npos)
        check(json[at + key.size()] != '0',
              "span '" + name + "' has zero calls");
}

} // namespace

int
main()
{
    // Exercise every instrumented stage with a tiny workload.
    basecall::BonitoLiteConfig cfg;
    cfg.convChannels = 8;
    cfg.lstmHidden = 8;
    cfg.lstmLayers = 1;
    nn::SequenceModel model = basecall::buildBonitoLite(cfg);

    const genomics::PoreModel pore;
    const genomics::Dataset dataset =
        genomics::makeDataset(genomics::specById("D1"), pore, 2);

    // Training: one epoch over a few chunks (chunk + train_epoch spans).
    {
        const genomics::Dataset train =
            genomics::makeTrainingDataset(1, 120, pore);
        const auto chunks = basecall::chunkDataset(train, 64);
        basecall::TrainConfig tc;
        tc.epochs = 1;
        tc.batchSize = 2;
        if (!chunks.empty())
            basecall::trainCtc(model, chunks, tc);
    }

    // Full pipeline (basecall/map/polish spans, ctc + align underneath).
    basecall::runPipeline(model, EvalOptions(dataset).maxReads(2));

    // One Monte-Carlo evaluation run (mc_run, vmm, program spans).
    NonIdealityConfig scenario;
    scenario.kind = NonIdealityKind::Combined;
    scenario.crossbar.size = 64;
    evaluateNonIdealAccuracy(
        model, scenario,
        EvalOptions(dataset).runs(1).maxReads(2).seedBase(42));

    // Export through the same env-var path production runs use.
    const std::string path =
        (std::filesystem::temp_directory_path() / "swordfish_metrics.json")
            .string();
    ::setenv(kMetricsOutEnv, path.c_str(), 1);
    check(writeMetricsIfConfigured(), "writeMetricsIfConfigured");

    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string json = buf.str();
    while (!json.empty() && (json.back() == '\n' || json.back() == '\r'))
        json.pop_back();
    check(!json.empty(), "metrics file empty");
    check(json.front() == '{' && json.back() == '}',
          "metrics output is not a single JSON object");
    check(JsonChecker(json).valid(), "metrics JSON malformed");

    for (const char* section :
         {"\"counters\":{", "\"gauges\":{", "\"histograms\":{",
          "\"spans\":{", "\"config\":{"})
        check(json.find(section) != std::string::npos,
              std::string("section missing: ") + section);

    // The six instrumented stages the acceptance criteria name, plus the
    // pipeline-level spans.
    for (const char* span : {"chunk", "vmm", "program", "ctc", "align",
                             "mc_run", "train_epoch", "pipeline.basecall",
                             "pipeline.map", "pipeline.polish"})
        checkSpanPresent(json, span);

    for (const char* counter :
         {"\"vmm.calls\":", "\"vmm.dac_conversions\":",
          "\"vmm.adc_conversions\":", "\"program.tiles\":",
          "\"ctc.decodes\":", "\"align.calls\":", "\"mc.runs\":",
          "\"chunk.samples\":", "\"eval.reads\":", "\"pipeline.reads\":"})
        check(json.find(counter) != std::string::npos,
              std::string("counter missing: ") + counter);

    // Drop the env var so the atexit dump does not recreate the temp file.
    ::unsetenv(kMetricsOutEnv);
    std::remove(path.c_str());
    if (failures == 0)
        std::printf("{\"bench\":\"metrics_smoke\",\"status\":\"ok\","
                    "\"bytes\":%zu}\n",
                    json.size());
    return failures == 0 ? 0 : 1;
}
