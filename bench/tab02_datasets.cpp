/**
 * @file
 * Table 2 reproduction: the four evaluation datasets (synthetic
 * counterparts of the paper's MinION R9.4.1 runs, scaled ~1/100), with the
 * materialized read counts and reference sizes.
 */

#include "bench_common.h"

using namespace swordfish;
using namespace swordfish::bench;

int
main()
{
    banner("Table 2 - read and reference datasets");

    core::ExperimentContext ctx;
    TextTable table;
    table.header({"Dataset", "Organism", "#Reads", "Ref genome size",
                  "Total bases", "GC%"});
    for (const auto& ds : ctx.datasets()) {
        table.row({ds.spec.id, ds.spec.organism,
                   std::to_string(ds.reads.size()),
                   std::to_string(ds.reference.size()),
                   std::to_string(ds.totalBases()),
                   pct(genomics::gcContent(ds.reference))});
    }
    table.print();
    std::printf("\n(scale: paper genome sizes and read counts / ~100; "
                "per-dataset GC bias and signal noise preserved)\n");
    return 0;
}
