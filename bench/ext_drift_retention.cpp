/**
 * @file
 * Extension experiment (paper Section 6 future work): conductance
 * retention drift over deployment time, with and without periodic R-V-W
 * refresh. Shows why the R-V-W maintenance loop that costs Fig. 14 its
 * throughput is not optional on real devices.
 */

#include "bench_common.h"

#include "crossbar/crossbar.h"

using namespace swordfish;
using namespace swordfish::bench;
using namespace swordfish::core;

int
main()
{
    banner("Extension - accuracy under conductance retention drift");

    ExperimentContext ctx;
    auto student = quantizeModel(ctx.teacher(), QuantConfig::deployment());
    const auto& ds = ctx.dataset("D1");
    const std::size_t reads = std::min<std::size_t>(
        ExperimentContext::evalReads(), 6);

    // Age the programmed weights by applying drift directly to the
    // model's deployed weight copies — equivalent to ageing every tile
    // uniformly — and evaluate through the standard backend.
    const crossbar::DriftConfig drift;
    TextTable table;
    table.header({"Hours since programming", "Accuracy (no refresh)",
                  "Accuracy (refresh every 4h)"});

    NonIdealityConfig scenario;
    scenario.kind = NonIdealityKind::SynapticWires;
    scenario.crossbar.size = 64;

    for (double hours : {0.0, 24.0, 168.0, 720.0}) {
        auto eval_with_age = [&](double effective_hours) {
            nn::SequenceModel aged = student;
            Rng rng(hashSeed({0xd41f7ULL,
                              static_cast<std::uint64_t>(
                                  effective_hours)}));
            const double t0 = drift.t0Hours;
            for (nn::Parameter* p : aged.parameters()) {
                if (!isVmmWeight(p->name) || effective_hours <= 0.0)
                    continue;
                for (float& w : p->value.raw()) {
                    const double nu = std::max(
                        0.0, rng.gauss(drift.nu, drift.nuSigma));
                    w = static_cast<float>(
                        w * std::pow((effective_hours + t0) / t0, -nu));
                }
            }
            const auto s = evaluateNonIdealAccuracy(
                aged, scenario, EvalOptions(ds).runs(2).maxReads(reads));
            return s.mean;
        };

        const double no_refresh = eval_with_age(hours);
        // With periodic refresh, the effective age is at most the
        // refresh interval.
        const double refreshed = eval_with_age(std::min(hours, 4.0));
        table.row({TextTable::num(hours, 0), pct(no_refresh),
                   pct(refreshed)});
        std::fflush(stdout);
    }
    table.print();
    std::printf("\nDrift compounds with the programming non-idealities; "
                "periodic R-V-W refresh bounds the loss at the cost of "
                "the Fig. 14 maintenance overhead.\n");
    return 0;
}
