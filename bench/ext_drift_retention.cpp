/**
 * @file
 * Extension experiment (paper Section 6 future work): basecalling accuracy
 * under conductance retention drift, swept across self-healing policies.
 * Each point deploys the model for a simulated number of hours (aging
 * spread evenly over the read stream) under one refresh mode:
 *
 *   off        aging only — the no-maintenance baseline
 *   interval   scheduled R-V-W refresh every deployment quarter
 *   threshold  probe-driven refresh (error > 0.25) with spare failover
 *
 * and prints one JSON line per (mode, aged hours) point, micro_evaluator
 * style, so a sweep driver can diff policies directly.
 *
 * Usage: ext_drift_retention [--checkpoint PREFIX]
 *
 * With --checkpoint, every Monte-Carlo run checkpoints its progress to
 * PREFIX.<mode>.<hours>h.run<r> and a SIGINT/SIGTERM finishes the
 * in-flight read block, flushes the checkpoint, and stops the sweep;
 * re-running the same command resumes and reproduces the uninterrupted
 * output bit for bit.
 *
 * Knobs: SWORDFISH_THREADS, SWORDFISH_EVAL_RUNS / SWORDFISH_EVAL_READS,
 * SWORDFISH_FAST=1 (smoke-run sizes).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "basecall/bonito_lite.h"
#include "core/evaluator.h"
#include "core/health.h"
#include "core/nonideality.h"
#include "genomics/dataset.h"
#include "util/env.h"
#include "util/shutdown.h"
#include "util/thread_pool.h"

using namespace swordfish;
using namespace swordfish::core;

int
main(int argc, char** argv)
{
    std::string checkpoint_prefix;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--checkpoint") == 0 && i + 1 < argc)
            checkpoint_prefix = argv[++i];
    }
    installShutdownHandler();

    const RuntimeConfig& env = runtimeConfig();
    const bool fast = env.fast;
    const std::size_t runs = env.evalRuns > 0
        ? static_cast<std::size_t>(env.evalRuns) : 2;
    const std::size_t reads = env.evalReads >= 0
        ? static_cast<std::size_t>(env.evalReads) : (fast ? 4 : 8);

    basecall::BonitoLiteConfig cfg;
    cfg.convChannels = fast ? 8 : 16;
    cfg.lstmHidden = fast ? 8 : 16;
    cfg.lstmLayers = fast ? 1 : 2;
    nn::SequenceModel model = basecall::buildBonitoLite(cfg);

    const genomics::PoreModel pore;
    const genomics::Dataset dataset =
        genomics::makeDataset(genomics::specById("D1"), pore, reads);

    NonIdealityConfig scenario;
    scenario.kind = NonIdealityKind::Combined;
    scenario.crossbar.size = 64;

    const std::vector<double> hours_points =
        fast ? std::vector<double>{24.0, 168.0}
             : std::vector<double>{24.0, 168.0, 720.0};
    const char* modes[] = {"off", "interval", "threshold"};

    bool interrupted = false;
    for (double hours : hours_points) {
        for (const char* mode : modes) {
            if (interrupted)
                break;
            // Spread the full deployment over the read stream; two reads
            // per epoch keeps the maintenance loop busy at smoke sizes.
            RefreshConfig refresh;
            refresh.ageHoursPerRead =
                hours / static_cast<double>(reads);
            refresh.probeReads = 2;
            if (std::strcmp(mode, "interval") == 0) {
                refresh.intervalHours = hours / 4.0;
                refresh.spares = 1;
            } else if (std::strcmp(mode, "threshold") == 0) {
                refresh.thresholdError = 0.25;
                refresh.spares = 2;
            }
            ScopedRefreshConfig scoped(refresh);

            EvalOptions opts(dataset);
            opts.runs(runs).maxReads(reads).seedBase(42);
            if (!checkpoint_prefix.empty())
                opts.checkpoint(checkpoint_prefix + "." + mode + "."
                                + std::to_string(
                                      static_cast<long>(hours))
                                + "h");
            const AccuracySummary s =
                evaluateNonIdealAccuracy(model, scenario, opts);
            interrupted = s.interrupted;

            std::printf("{\"bench\":\"ext_refresh_sweep\","
                        "\"mode\":\"%s\",\"aged_hours\":%.1f,"
                        "\"runs\":%zu,\"reads\":%zu,"
                        "\"accuracy_mean\":%.6f,"
                        "\"accuracy_stddev\":%.6f,"
                        "\"accuracy_min\":%.6f,\"accuracy_max\":%.6f,"
                        "\"vmm_faults\":%zu,"
                        "\"interrupted\":%s,\"refresh\":%s}\n",
                        mode, hours, s.runs, reads, s.mean, s.stddev,
                        s.min, s.max, s.degraded.vmmFaults,
                        s.interrupted ? "true" : "false",
                        refresh.toJson().c_str());
            std::fflush(stdout);
        }
        if (interrupted)
            break;
    }
    if (interrupted)
        std::fprintf(stderr, "sweep interrupted — re-run with the same "
                             "--checkpoint to resume\n");
    return 0;
}
