/**
 * @file
 * Fig. 8 reproduction: accuracy after accounting for non-idealities on
 * 64x64 crossbars for D1-D4 (paper Section 5.2.2).
 */

#include "nonideality_table.h"

int
main()
{
    return swordfish::bench::runNonIdealityTable(64, "Fig. 8");
}
