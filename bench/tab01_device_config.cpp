/**
 * @file
 * Table 1 reproduction: the memristor array and device configuration used
 * by every crossbar experiment, printed from the live defaults so the
 * table can never drift from the code.
 */

#include "bench_common.h"

using namespace swordfish;
using namespace swordfish::bench;

int
main()
{
    banner("Table 1 - array and device configuration");

    const crossbar::CrossbarConfig config;
    TextTable table;
    table.header({"Parameter", "Value"});
    table.row({"Technology and device", "ReRAM HfO2/TiOx (simulated)"});
    table.row({"Cell configuration", "1T1R (NMOS T: 460 nm/40 nm)"});
    table.row({"HRS/LRS",
               TextTable::num(1.0 / config.device.gMin / 1e6, 0) + " MOhm / "
               + TextTable::num(1.0 / config.device.gMax / 1e3, 0)
               + " kOhm"});
    table.row({"Conductance levels",
               std::to_string(config.device.conductanceLevels)});
    table.row({"State nonlinearity (n)",
               TextTable::num(config.device.stateNonlinearity, 2)});
    table.row({"Array sizes", "64x64 and 256x256"});
    table.row({"SA V_min",
               TextTable::num(config.device.senseMarginV * 1e3, 0) + " mV"});
    table.row({"Read voltage",
               TextTable::num(config.device.readVoltage, 2) + " V"});
    table.row({"DAC resolution", std::to_string(config.dac.bits) + " bits"});
    table.row({"ADC resolution", std::to_string(config.adc.bits) + " bits"});
    table.row({"Default write scheme",
               crossbar::writeSchemeName(config.scheme)});
    table.row({"Write variation rate",
               pct(config.writeVariationRate)});
    table.print();
    return 0;
}
