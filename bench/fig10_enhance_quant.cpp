/**
 * @file
 * Fig. 10 reproduction: accuracy-enhancement techniques applied to the
 * quantized basecaller — quantization is the only hardware constraint
 * modeled (paper Section 5.3). Retraining-based techniques (VAT, KD,
 * RSA+KD, All) perform quantization-aware fine-tuning; R-V-W is a
 * programming-scheme change and leaves a purely-quantized digital model
 * unchanged, which the table makes visible.
 */

#include "bench_common.h"

using namespace swordfish;
using namespace swordfish::bench;
using namespace swordfish::core;

int
main()
{
    banner("Fig. 10 - enhancement vs. quantization configurations");

    ExperimentContext ctx;
    auto& teacher = ctx.teacher();
    // Shared request proto: env-sized reads; dataset set per loop.
    const EvalRequest proto = benchEval(ctx.datasets().front());

    // Quantized-only sweep: all FPP configurations from Table 3.
    const std::vector<QuantConfig> configs = {
        {16, 16}, {8, 8}, {8, 4}, {4, 8}, {4, 4}, {4, 2},
    };

    // Baseline (DFP 32-32) accuracy averaged over the datasets.
    std::printf("Baseline (DFP 32-32): %s\n\n",
                pct(meanBaselineAccuracy(ctx)).c_str());

    TextTable table;
    std::vector<std::string> header = {"Quant"};
    header.push_back("No enh.");
    for (auto tech : figureTenSweep())
        header.push_back(techniqueName(tech));
    table.header(header);

    for (const auto& q : configs) {
        NonIdealityConfig scenario;
        scenario.kind = NonIdealityKind::None;
        scenario.quant = q;

        std::vector<std::string> row = {q.name()};
        // Un-enhanced quantized accuracy (averaged over datasets).
        row.push_back(pct(meanQuantizedAccuracy(teacher, q, ctx.datasets(),
                                                proto)));

        for (auto tech : figureTenSweep()) {
            EnhancerConfig ec;
            ec.technique = tech;
            ec.retrainEpochs = retrainEpochs();
            auto enhanced = ctx.enhanced(scenario, ec);

            // Digital evaluation at the target precision: the technique's
            // retrained weights, quantization applied.
            row.push_back(pct(meanQuantizedAccuracy(
                enhanced.model, q, ctx.datasets(), proto)));
            std::fflush(stdout);
        }
        table.row(row);
    }
    table.print();
    std::printf("\nPaper shape: quantization-aware retraining recovers the "
                "quantization loss; with everything applied the 16-bit "
                "model matches the FP32 baseline.\n");
    return 0;
}
