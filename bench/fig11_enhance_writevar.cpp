/**
 * @file
 * Fig. 11 reproduction: accuracy-enhancement techniques across write-
 * variation rates (paper Section 5.4.1). Panels (a)-(d) report each
 * technique per dataset, (e) the combination of all techniques, and (f)
 * the per-technique average over the datasets.
 */

#include <map>

#include "bench_common.h"

using namespace swordfish;
using namespace swordfish::bench;
using namespace swordfish::core;

int
main()
{
    banner("Fig. 11 - enhancement vs. write variation");

    ExperimentContext ctx;
    // Shared request proto: capped reads, 3 runs; dataset set per loop.
    const EvalRequest proto = benchEval(ctx.datasets().front(), 3, 8);
    const auto rates = writeVariationSweep();
    const std::vector<Technique> techs = {
        Technique::Vat, Technique::Kd, Technique::Rvw, Technique::RsaKd,
        Technique::All,
    };

    std::printf("Baseline (DFP 32-32): %s\n",
                pct(meanBaselineAccuracy(ctx)).c_str());

    // accumulators for panel (f): technique x rate -> mean over datasets
    std::map<std::pair<int, int>, double> averaged;

    for (std::size_t t = 0; t < techs.size(); ++t) {
        const Technique tech = techs[t];
        std::printf("\n(%c) %s\n", static_cast<char>('a' + t),
                    techniqueName(tech));
        TextTable table;
        std::vector<std::string> header = {"Write var"};
        for (const auto& ds : ctx.datasets())
            header.push_back(ds.spec.id);
        table.header(header);

        for (std::size_t r = 0; r < rates.size(); ++r) {
            const auto scenario = writeVariationScenario(rates[r]);
            EnhancerConfig ec;
            ec.technique = tech;
            ec.retrainEpochs = retrainEpochs();
            auto enhanced = ctx.enhanced(scenario, ec);

            std::vector<std::string> row = {pct(rates[r])};
            double sum = 0.0;
            for (const auto& ds : ctx.datasets()) {
                EvalRequest req = proto;
                req.dataset = &ds;
                const auto s = evaluateNonIdealAccuracy(
                    enhanced.model,
                    {enhanced.evalConfig, enhanced.remap}, req);
                row.push_back(pctErr(s));
                sum += s.mean;
            }
            averaged[{static_cast<int>(t), static_cast<int>(r)}] =
                sum / static_cast<double>(ctx.datasets().size());
            table.row(row);
            std::fflush(stdout);
        }
        table.print();
    }

    std::printf("\n(f) Averaged over datasets\n");
    TextTable avg;
    std::vector<std::string> header = {"Write var"};
    for (auto tech : techs)
        header.push_back(techniqueName(tech));
    avg.header(header);
    for (std::size_t r = 0; r < rates.size(); ++r) {
        std::vector<std::string> row = {pct(rates[r])};
        for (std::size_t t = 0; t < techs.size(); ++t)
            row.push_back(pct(averaged[{static_cast<int>(t),
                                        static_cast<int>(r)}]));
        avg.row(row);
    }
    avg.print();
    std::printf("\nPaper shape: every technique helps but degrades with "
                "rate; the online RSA+KD leads the offline methods; "
                "combining all techniques is best; only rates up to ~10%% "
                "remain tolerable.\n");
    return 0;
}
