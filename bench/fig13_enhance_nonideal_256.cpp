/**
 * @file
 * Fig. 13 reproduction: accuracy after enhancement mechanisms for the
 * evaluated non-idealities on 256x256 crossbars (paper Section 5.4.2).
 */

#include "enhance_nonideal_table.h"

int
main()
{
    return swordfish::bench::runEnhanceNonIdealTable(256, "Fig. 13");
}
