/**
 * @file
 * Micro-benchmark for the parallel Monte-Carlo evaluation engine: wall
 * time of evaluateNonIdealAccuracy with the global pool disabled vs.
 * pooled, reported as reads/s and emitted as one JSON object so future
 * PRs can track the trajectory.
 *
 * Knobs: SWORDFISH_THREADS (pooled worker count; default hardware
 * concurrency), SWORDFISH_EVAL_RUNS / SWORDFISH_EVAL_READS (work size),
 * SWORDFISH_FAST=1 (smoke-run sizes).
 */

#include <cstdio>
#include <thread>

#include "basecall/bonito_lite.h"
#include "core/evaluator.h"
#include "core/nonideality.h"
#include "core/vmm_backend.h"
#include "genomics/dataset.h"
#include "util/env.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace swordfish;
using namespace swordfish::core;

int
main()
{
    const bool fast = fastMode();
    const std::size_t runs = static_cast<std::size_t>(
        envLong("SWORDFISH_EVAL_RUNS", fast ? 2 : 4));
    const std::size_t reads = static_cast<std::size_t>(
        envLong("SWORDFISH_EVAL_READS", fast ? 2 : 6));
    const std::size_t hw = std::thread::hardware_concurrency() > 0
        ? std::thread::hardware_concurrency() : 1;
    const long env_threads = envLong("SWORDFISH_THREADS",
                                     static_cast<long>(hw));
    // Negative values mean "unset" (as in thread_pool.cpp), not SIZE_MAX.
    const std::size_t pooled_threads = env_threads >= 0
        ? static_cast<std::size_t>(env_threads) : hw;

    basecall::BonitoLiteConfig cfg;
    cfg.convChannels = fast ? 8 : 16;
    cfg.lstmHidden = fast ? 8 : 16;
    cfg.lstmLayers = fast ? 1 : 2;
    nn::SequenceModel model = basecall::buildBonitoLite(cfg);

    const genomics::PoreModel pore;
    const genomics::Dataset dataset =
        genomics::makeDataset(genomics::specById("D1"), pore, reads);

    NonIdealityConfig scenario;
    scenario.kind = NonIdealityKind::Combined;
    scenario.crossbar.size = 64;
    const SramRemapConfig remap;

    // Reads/s of one full Monte-Carlo evaluation at the given pool size
    // (0 = fully serial). The first call warms allocators and code paths.
    auto measure = [&](std::size_t threads) {
        setGlobalPoolThreads(threads);
        evaluateNonIdealAccuracy(model, scenario, remap, dataset,
                                 /*runs=*/1, reads, /*seed_base=*/42);
        Stopwatch watch;
        evaluateNonIdealAccuracy(model, scenario, remap, dataset, runs,
                                 reads, /*seed_base=*/42);
        const double secs = watch.seconds();
        return secs > 0.0
            ? static_cast<double>(runs * reads) / secs : 0.0;
    };

    const double serial = measure(0);
    const double pooled = measure(pooled_threads);
    const double speedup = serial > 0.0 ? pooled / serial : 0.0;

    // Per-stage counters/spans accumulated over both measurements (the
    // instrumentation is observe-only, so it cannot perturb the results).
    const std::string metrics_json = metrics().snapshot().toJson();
    std::printf("{\"bench\":\"micro_evaluator\",\"runs\":%zu,"
                "\"reads\":%zu,\"pooled_threads\":%zu,"
                "\"serial_reads_per_s\":%.3f,"
                "\"pooled_reads_per_s\":%.3f,\"speedup\":%.3f,"
                "\"metrics\":%s}\n",
                runs, reads, pooled_threads, serial, pooled, speedup,
                metrics_json.c_str());
    return 0;
}
