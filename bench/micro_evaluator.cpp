/**
 * @file
 * Micro-benchmark for the parallel, batched Monte-Carlo evaluation engine:
 * wall time of evaluateNonIdealAccuracy with the global pool disabled vs.
 * pooled, with the crossbar batch at 1 vs. --batch N, and with the
 * interpretive vs. AOT-compiled execution engine (plus each engine's
 * one-time compile cost), reported as reads/s and emitted as one JSON
 * object so future PRs can track the trajectory.
 *
 * Usage: micro_evaluator [--batch N]   (default N = 8)
 *
 * Knobs: SWORDFISH_THREADS (pooled worker count; default hardware
 * concurrency), SWORDFISH_EVAL_RUNS / SWORDFISH_EVAL_READS (work size),
 * SWORDFISH_FAST=1 (smoke-run sizes).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "basecall/bonito_lite.h"
#include "core/evaluator.h"
#include "core/nonideality.h"
#include "core/registry.h"
#include "core/vmm_backend.h"
#include "genomics/dataset.h"
#include "util/env.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace swordfish;
using namespace swordfish::core;

int
main(int argc, char** argv)
{
    std::size_t batch_n = 8;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc)
            batch_n = static_cast<std::size_t>(std::atol(argv[++i]));
    }
    if (batch_n == 0)
        batch_n = 1;

    const RuntimeConfig& env = runtimeConfig();
    const bool fast = env.fast;
    const std::size_t runs = env.evalRuns > 0
        ? static_cast<std::size_t>(env.evalRuns) : (fast ? 2 : 4);
    const std::size_t reads = env.evalReads >= 0
        ? static_cast<std::size_t>(env.evalReads) : (fast ? 2 : 6);
    const std::size_t hw = std::thread::hardware_concurrency() > 0
        ? std::thread::hardware_concurrency() : 1;
    const std::size_t pooled_threads = env.threads >= 0
        ? static_cast<std::size_t>(env.threads) : hw;

    basecall::BonitoLiteConfig cfg;
    cfg.convChannels = fast ? 8 : 16;
    cfg.lstmHidden = fast ? 8 : 16;
    cfg.lstmLayers = fast ? 1 : 2;
    nn::SequenceModel model = basecall::buildBonitoLite(cfg);

    // The batch sweep needs at least batch_n reads to fill one group.
    const std::size_t batch_reads = std::max(reads, batch_n);
    const genomics::PoreModel pore;
    const genomics::Dataset dataset =
        genomics::makeDataset(genomics::specById("D1"), pore, batch_reads);

    NonIdealityConfig scenario;
    scenario.kind = NonIdealityKind::Combined;
    scenario.crossbar.size = 64;

    // Reads/s of one full Monte-Carlo evaluation at the given pool size
    // (0 = fully serial) and batch capacity. The first call warms
    // allocators and code paths. `degraded` keeps the per-read outcome
    // breakdown of the last measured evaluation, so fault sweeps driven by
    // SWORDFISH_FAULTS land in the JSON output below.
    DegradedResult degraded;
    auto measure = [&](std::size_t threads, std::size_t batch,
                       std::size_t n_reads) {
        setGlobalPoolThreads(threads);
        evaluateNonIdealAccuracy(model, scenario,
                                 EvalOptions(dataset).runs(1)
                                     .maxReads(n_reads).seedBase(42)
                                     .batch(batch));
        Stopwatch watch;
        const AccuracySummary summary = evaluateNonIdealAccuracy(
            model, scenario,
            EvalOptions(dataset).runs(runs).maxReads(n_reads).seedBase(42)
                .batch(batch));
        const double secs = watch.seconds();
        degraded = summary.degraded;
        return secs > 0.0
            ? static_cast<double>(runs * n_reads) / secs : 0.0;
    };

    const double serial = measure(0, 1, reads);
    const double pooled = measure(pooled_threads, 1, reads);
    const double speedup = serial > 0.0 ? pooled / serial : 0.0;

    // Batch sweep at the pooled thread count: serial-vs-batched crossbar
    // execution over the same reads.
    const double batch1 = measure(pooled_threads, 1, batch_reads);
    const double batched = measure(pooled_threads, batch_n, batch_reads);
    const double batch_speedup = batch1 > 0.0 ? batched / batch1 : 0.0;

    // Engine sweep: interpretive per-call dispatch vs the AOT-compiled
    // ExecPlan, at the pooled/batched operating point — plus each
    // engine's one-time compile cost (registry lifecycle, AOT
    // programming + plan lowering on a fresh backend).
    auto measure_engine = [&](const char* engine) {
        setGlobalPoolThreads(pooled_threads);
        const EvalOptions opts = EvalOptions(dataset).runs(runs)
            .maxReads(batch_reads).seedBase(42).batch(batch_n)
            .backend(engine);
        evaluateNonIdealAccuracy(model, scenario, opts); // warmup
        Stopwatch watch;
        evaluateNonIdealAccuracy(model, scenario, opts);
        const double secs = watch.seconds();
        return secs > 0.0
            ? static_cast<double>(runs * batch_reads) / secs : 0.0;
    };
    auto compile_seconds = [&](ExecMode mode) {
        BackendSpec spec;
        spec.scenario = scenario;
        spec.seed = 42;
        spec.mode = mode;
        auto api = BackendRegistry::instance().create("analytical", spec);
        if (api == nullptr || !api->initialize().ok())
            return -1.0;
        const CompileResult compiled = api->compile(model);
        return compiled.success() ? compiled.seconds : -1.0;
    };
    const double interp_reads_per_s = measure_engine("interpreter");
    const double compiled_reads_per_s = measure_engine("compiled");
    const double engine_speedup = interp_reads_per_s > 0.0
        ? compiled_reads_per_s / interp_reads_per_s : 0.0;
    const double interp_compile_s = compile_seconds(ExecMode::Interpreter);
    const double compiled_compile_s = compile_seconds(ExecMode::Compiled);

    // Active fault-injection config (from SWORDFISH_FAULTS) and the
    // outcome breakdown of the last measured evaluation, so a fault sweep
    // can parse accuracy degradation straight from this output.
    const FaultInjector& inj = faultInjector();
    const std::string faults_json =
        inj.enabled() ? inj.config().toJson() : "null";
    char degraded_json[256];
    std::snprintf(degraded_json, sizeof(degraded_json),
                  "{\"ok\":%zu,\"retried\":%zu,\"decode_errors\":%zu,"
                  "\"nan_outputs\":%zu,\"vmm_faults\":%zu,"
                  "\"skipped\":%zu}",
                  degraded.okReads, degraded.retriedReads,
                  degraded.decodeErrors, degraded.nanOutputs,
                  degraded.vmmFaults, degraded.skippedReads());

    // Per-stage counters/spans accumulated over all measurements (the
    // instrumentation is observe-only, so it cannot perturb the results).
    const std::string metrics_json = metrics().snapshot().toJson();
    std::printf("{\"bench\":\"micro_evaluator\",\"runs\":%zu,"
                "\"reads\":%zu,\"pooled_threads\":%zu,"
                "\"serial_reads_per_s\":%.3f,"
                "\"pooled_reads_per_s\":%.3f,\"speedup\":%.3f,"
                "\"batch\":%zu,\"batch_reads\":%zu,"
                "\"batch1_reads_per_s\":%.3f,"
                "\"batch%zu_reads_per_s\":%.3f,"
                "\"batch_speedup\":%.3f,"
                "\"interpreter_reads_per_s\":%.3f,"
                "\"compiled_reads_per_s\":%.3f,"
                "\"engine_speedup\":%.3f,"
                "\"interpreter_compile_s\":%.6f,"
                "\"compiled_compile_s\":%.6f,"
                "\"faults\":%s,\"degraded\":%s,"
                "\"metrics\":%s}\n",
                runs, reads, pooled_threads, serial, pooled, speedup,
                batch_n, batch_reads, batch1, batch_n, batched,
                batch_speedup, interp_reads_per_s, compiled_reads_per_s,
                engine_speedup, interp_compile_s, compiled_compile_s,
                faults_json.c_str(), degraded_json,
                metrics_json.c_str());
    return 0;
}
