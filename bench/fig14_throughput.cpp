/**
 * @file
 * Fig. 14 reproduction: basecalling throughput (Kbp/s) of Bonito-GPU,
 * Ideal-SwordfishAccel, and the Realistic variants (R-V-W, RSA, RSA+KD)
 * per dataset and averaged (paper Section 5.5). 64x64 crossbars, 10%
 * write variation, 5% SRAM weights for RSA / 1% for RSA+KD.
 */

#include "bench_common.h"

#include "arch/energy.h"

using namespace swordfish;
using namespace swordfish::bench;
using namespace swordfish::core;
using namespace swordfish::arch;

int
main()
{
    banner("Fig. 14 - throughput comparison of Swordfish variations");

    ExperimentContext ctx;
    auto& model = ctx.teacher();
    const auto map = buildPartitionMap(model, 64);
    const TimingParams timing;

    std::printf("%s\n", map.describe().c_str());

    const std::vector<Variant> variants = {
        Variant::BonitoGpu, Variant::Ideal, Variant::RealisticRvw,
        Variant::RealisticRsa, Variant::RealisticRsaKd,
    };

    TextTable table;
    std::vector<std::string> header = {"Variant"};
    for (const auto& ds : ctx.datasets())
        header.push_back(ds.spec.id + " (Kbp/s)");
    header.push_back("Average");
    header.push_back("vs GPU");
    header.push_back("Energy (uJ/Kb)");
    table.header(header);

    const EnergyParams energy;
    double gpu_avg = 0.0;
    for (Variant v : variants) {
        std::vector<std::string> row = {variantName(v)};
        double sum = 0.0;
        double energy_uj_per_kb = 0.0;
        for (const auto& ds : ctx.datasets()) {
            WorkloadProfile wl;
            wl.samplesPerBase = ds.spec.signal.dwellMean;
            wl.convStride = ExperimentContext::modelConfig().convStride;
            wl.meanReadLenBases = static_cast<double>(ds.totalBases())
                / static_cast<double>(ds.reads.size());
            wl.batch = runtimeConfig().batchSize();
            const auto r = estimateThroughput(v, map, timing, wl);
            row.push_back(TextTable::num(r.kbps, 1));
            sum += r.kbps;
            energy_uj_per_kb += estimateEnergy(v, map, timing, energy,
                                               wl).ujPerKb;
        }
        const double avg = sum / static_cast<double>(ctx.datasets().size());
        if (v == Variant::BonitoGpu)
            gpu_avg = avg;
        row.push_back(TextTable::num(avg, 1));
        row.push_back(TextTable::num(avg / gpu_avg, 2) + "x");
        row.push_back(TextTable::num(
            energy_uj_per_kb
                / static_cast<double>(ctx.datasets().size()), 3));
        table.row(row);
    }
    table.print();
    std::printf("\nPaper shape: Ideal ~414x over GPU; R-V-W maintenance "
                "makes it ~0.7x (slower than GPU); RSA ~5.2x; RSA+KD "
                "~25.7x.\n");
    return 0;
}
