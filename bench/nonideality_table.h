/**
 * @file
 * Shared implementation of the Figs. 8/9 benches (accuracy under each
 * non-ideality group, per dataset, one crossbar size per binary).
 */

#ifndef SWORDFISH_BENCH_NONIDEALITY_TABLE_H
#define SWORDFISH_BENCH_NONIDEALITY_TABLE_H

#include "bench_common.h"

namespace swordfish::bench {

/** Run the Fig. 8/9 experiment for one crossbar size. */
inline int
runNonIdealityTable(std::size_t crossbar_size, const char* figure)
{
    banner(std::string(figure)
           + " - accuracy under non-idealities, "
           + std::to_string(crossbar_size) + "x"
           + std::to_string(crossbar_size)
           + " crossbars (10% write variation, no enhancement)");

    core::ExperimentContext ctx;
    auto student = core::quantizeModel(ctx.teacher(),
                                       QuantConfig::deployment());

    TextTable table;
    std::vector<std::string> header = {"Dataset"};
    for (auto kind : core::figureEightSweep())
        header.push_back(core::nonIdealityName(kind));
    table.header(header);

    for (const auto& ds : ctx.datasets()) {
        std::vector<std::string> row = {ds.spec.id};
        for (auto kind : core::figureEightSweep()) {
            core::NonIdealityConfig cfg;
            cfg.kind = kind;
            cfg.crossbar.size = crossbar_size;
            const auto s = core::evaluateNonIdealAccuracy(
                student, cfg, benchEval(ds, 5));
            row.push_back(pctErr(s));
        }
        table.row(row);
        std::fflush(stdout);
    }
    table.print();
    std::printf("\nPaper shape: every individual non-ideality costs "
                "double-digit accuracy; Combined/Measured are worse and "
                "non-additive; larger crossbars lose more.\n");
    return 0;
}

} // namespace swordfish::bench

#endif // SWORDFISH_BENCH_NONIDEALITY_TABLE_H
