/**
 * @file
 * Kernel microbenchmarks (google-benchmark): the hot computational paths
 * of the framework — GEMM, ideal vs. non-ideal crossbar VMM, CTC loss and
 * decode, and banded alignment. Useful for tracking simulator performance
 * regressions; not a paper figure.
 */

#include <benchmark/benchmark.h>

#include "crossbar/crossbar.h"
#include "genomics/align.h"
#include "genomics/dataset.h"
#include "nn/ctc.h"
#include "tensor/matrix.h"
#include "util/rng.h"

using namespace swordfish;

namespace {

Matrix
randomMatrix(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    Matrix m(rows, cols);
    Rng rng(seed);
    for (float& v : m.raw())
        v = static_cast<float>(rng.gauss(0.0, 0.5));
    return m;
}

void
BM_GemmBT(benchmark::State& state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const Matrix x = randomMatrix(128, n, 1);
    const Matrix w = randomMatrix(4 * n, n, 2);
    Matrix y;
    for (auto _ : state) {
        gemmBT(x, w, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations())
                            * 128 * n * 4 * n);
}
BENCHMARK(BM_GemmBT)->Arg(32)->Arg(64)->Arg(128);

void
BM_CrossbarVmmFast(benchmark::State& state)
{
    const auto size = static_cast<std::size_t>(state.range(0));
    crossbar::CrossbarConfig config;
    config.size = size;
    const Matrix w = randomMatrix(size, size, 3);
    const crossbar::CrossbarTile tile(
        config, w, 0.0f, crossbar::NoiseToggles::combined(), 7);
    const Matrix x = randomMatrix(128, size, 4);
    Rng rng(5);
    for (auto _ : state) {
        Matrix y = tile.vmmFast(x, rng);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_CrossbarVmmFast)->Arg(64)->Arg(256);

void
BM_CrossbarProgram(benchmark::State& state)
{
    const auto size = static_cast<std::size_t>(state.range(0));
    crossbar::CrossbarConfig config;
    config.size = size;
    const Matrix w = randomMatrix(size, size, 3);
    std::uint64_t seed = 0;
    for (auto _ : state) {
        crossbar::CrossbarTile tile(
            config, w, 0.0f, crossbar::NoiseToggles::combined(), ++seed);
        benchmark::DoNotOptimize(tile.effectiveWeights().data());
    }
}
BENCHMARK(BM_CrossbarProgram)->Arg(64)->Arg(256);

void
BM_CtcLoss(benchmark::State& state)
{
    const Matrix logits = randomMatrix(128, 5, 6);
    std::vector<int> target;
    Rng rng(7);
    for (int i = 0; i < 50; ++i)
        target.push_back(static_cast<int>(rng.range(1, 4)));
    for (auto _ : state) {
        auto res = nn::ctcLoss(logits, target);
        benchmark::DoNotOptimize(res.loss);
    }
}
BENCHMARK(BM_CtcLoss);

void
BM_CtcGreedyDecode(benchmark::State& state)
{
    const Matrix logits = randomMatrix(2048, 5, 8);
    for (auto _ : state) {
        auto seq = nn::ctcGreedyDecode(logits);
        benchmark::DoNotOptimize(seq.data());
    }
}
BENCHMARK(BM_CtcGreedyDecode);

void
BM_BandedAlignment(benchmark::State& state)
{
    Rng rng(9);
    const auto len = static_cast<std::size_t>(state.range(0));
    genomics::Sequence a = genomics::generateGenome(len, 0.5, rng);
    genomics::Sequence b = a;
    for (std::size_t i = 0; i < b.size(); i += 37)
        b[i] = static_cast<std::uint8_t>((b[i] + 1) % 4);
    for (auto _ : state) {
        auto res = genomics::alignGlobal(a, b);
        benchmark::DoNotOptimize(res.matches);
    }
}
BENCHMARK(BM_BandedAlignment)->Arg(400)->Arg(1000);

void
BM_SquiggleSimulation(benchmark::State& state)
{
    const genomics::PoreModel pore;
    Rng rng(10);
    const genomics::Sequence seq = genomics::generateGenome(400, 0.5, rng);
    const genomics::SignalParams params;
    for (auto _ : state) {
        auto signal = pore.simulate(seq, params, rng);
        benchmark::DoNotOptimize(signal.data());
    }
}
BENCHMARK(BM_SquiggleSimulation);

} // namespace

BENCHMARK_MAIN();
