/**
 * @file
 * Kernel microbenchmarks (google-benchmark) plus the roofline report.
 *
 * Default mode runs the google-benchmark suite over the hot computational
 * paths — GEMM, ideal vs. non-ideal crossbar VMM (serial and batched),
 * the fused LSTM gate block, CTC loss and decode, and banded alignment.
 *
 * `--roofline` switches to a self-contained report: it measures the
 * machine's practical peak FMA throughput (scalar and AVX2) and streaming
 * bandwidth once, then times each hot kernel at both SIMD levels and emits
 * one JSON line per (kernel, level, batch) point with achieved GFLOPs and
 * the fraction of the matching ceiling — the format EXPERIMENTS.md §roofline
 * documents and CI diffs against bench/roofline_baseline.json:
 *
 *   micro_kernels --roofline [--quick] [--baseline FILE] [--out FILE]
 *
 * With --baseline, the run exits non-zero when any kernel's frac_peak drops
 * below 0.8x its baseline value (a >20% regression).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "crossbar/crossbar.h"
#include "genomics/align.h"
#include "genomics/dataset.h"
#include "nn/ctc.h"
#include "tensor/kernels.h"
#include "tensor/lanes.h"
#include "tensor/matrix.h"
#include "tensor/quantize.h"
#include "tensor/simd.h"
#include "util/rng.h"

using namespace swordfish;

namespace {

Matrix
randomMatrix(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    Matrix m(rows, cols);
    Rng rng(seed);
    for (float& v : m.raw())
        v = static_cast<float>(rng.gauss(0.0, 0.5));
    return m;
}

/** Stacked batch operand: `lanes` lanes of `rows_per_lane` rows each. */
BatchLayout
uniformLayout(std::size_t lanes, std::size_t rows_per_lane)
{
    BatchLayout layout;
    for (std::size_t l = 0; l < lanes; ++l)
        layout.push_back({l, rows_per_lane});
    return layout;
}

void
BM_GemmBT(benchmark::State& state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const Matrix x = randomMatrix(128, n, 1);
    const Matrix w = randomMatrix(4 * n, n, 2);
    Matrix y;
    for (auto _ : state) {
        gemmBT(x, w, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations())
                            * 128 * n * 4 * n);
}
BENCHMARK(BM_GemmBT)->Arg(32)->Arg(64)->Arg(128);

void
BM_CrossbarVmmFast(benchmark::State& state)
{
    const auto size = static_cast<std::size_t>(state.range(0));
    crossbar::CrossbarConfig config;
    config.size = size;
    const Matrix w = randomMatrix(size, size, 3);
    const crossbar::CrossbarTile tile(
        config, w, 0.0f, crossbar::NoiseToggles::combined(), 7);
    const Matrix x = randomMatrix(128, size, 4);
    Rng rng(5);
    for (auto _ : state) {
        Matrix y = tile.vmmFast(x, rng);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_CrossbarVmmFast)->Arg(64)->Arg(256);

/**
 * Batched multi-lane VMM per (batch size, SIMD level): the scalar-vs-AVX2
 * delta per batch. Arg 0 = lanes, arg 1 = SimdLevel int.
 */
void
BM_BatchedVmmLanes(benchmark::State& state)
{
    const auto lanes = static_cast<std::size_t>(state.range(0));
    const auto level = static_cast<SimdLevel>(state.range(1));
    if (level == SimdLevel::Avx2 && !cpuSupportsAvx2()) {
        state.SkipWithError("CPU lacks AVX2/FMA");
        return;
    }
    const ScopedSimdLevel scoped(level);
    constexpr std::size_t kSize = 256, kRowsPerLane = 16;
    crossbar::CrossbarConfig config;
    config.size = kSize;
    const Matrix w = randomMatrix(kSize, kSize, 3);
    const crossbar::CrossbarTile tile(
        config, w, 0.0f, crossbar::NoiseToggles::allOff(), 7);
    const Matrix x = randomMatrix(lanes * kRowsPerLane, kSize, 4);
    const BatchLayout layout = uniformLayout(lanes, kRowsPerLane);
    std::vector<Rng> rngs;
    std::vector<Rng*> rng_ptrs;
    for (std::size_t l = 0; l < lanes; ++l)
        rngs.emplace_back(100 + l);
    for (auto& r : rngs)
        rng_ptrs.push_back(&r);
    crossbar::VmmScratch scratch;
    for (auto _ : state) {
        tile.vmmFastLanes(x, layout, rng_ptrs.data(), scratch);
        benchmark::DoNotOptimize(scratch.y.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations())
                            * static_cast<std::int64_t>(2 * lanes
                                                        * kRowsPerLane
                                                        * kSize * kSize));
}
BENCHMARK(BM_BatchedVmmLanes)
    ->Args({1, 0})->Args({1, 1})
    ->Args({4, 0})->Args({4, 1})
    ->Args({8, 0})->Args({8, 1});

/** Fused LSTM gate block per (batch size, SIMD level). */
void
BM_LstmGate(benchmark::State& state)
{
    const auto batch = static_cast<std::size_t>(state.range(0));
    const auto level = static_cast<SimdLevel>(state.range(1));
    if (level == SimdLevel::Avx2 && !cpuSupportsAvx2()) {
        state.SkipWithError("CPU lacks AVX2/FMA");
        return;
    }
    const ScopedSimdLevel scoped(level);
    constexpr std::size_t kHidden = 256;
    const Matrix zi = randomMatrix(batch, 4 * kHidden, 11);
    const Matrix zr = randomMatrix(batch, 4 * kHidden, 12);
    const Matrix b = randomMatrix(1, 4 * kHidden, 13);
    Matrix c(batch, kHidden), h(batch, kHidden);
    for (auto _ : state) {
        for (std::size_t l = 0; l < batch; ++l)
            kernels::lstmGateBlock(zi.rowPtr(l), zr.rowPtr(l), b.rowPtr(0),
                                   kHidden, c.rowPtr(l), c.rowPtr(l),
                                   nullptr, h.rowPtr(l), nullptr);
        benchmark::DoNotOptimize(h.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations())
                            * static_cast<std::int64_t>(batch * kHidden));
}
BENCHMARK(BM_LstmGate)
    ->Args({1, 0})->Args({1, 1})
    ->Args({4, 0})->Args({4, 1})
    ->Args({8, 0})->Args({8, 1});

void
BM_CrossbarProgram(benchmark::State& state)
{
    const auto size = static_cast<std::size_t>(state.range(0));
    crossbar::CrossbarConfig config;
    config.size = size;
    const Matrix w = randomMatrix(size, size, 3);
    std::uint64_t seed = 0;
    for (auto _ : state) {
        crossbar::CrossbarTile tile(
            config, w, 0.0f, crossbar::NoiseToggles::combined(), ++seed);
        benchmark::DoNotOptimize(tile.effectiveWeights().data());
    }
}
BENCHMARK(BM_CrossbarProgram)->Arg(64)->Arg(256);

void
BM_CtcLoss(benchmark::State& state)
{
    const Matrix logits = randomMatrix(128, 5, 6);
    std::vector<int> target;
    Rng rng(7);
    for (int i = 0; i < 50; ++i)
        target.push_back(static_cast<int>(rng.range(1, 4)));
    for (auto _ : state) {
        auto res = nn::ctcLoss(logits, target);
        benchmark::DoNotOptimize(res.loss);
    }
}
BENCHMARK(BM_CtcLoss);

void
BM_CtcGreedyDecode(benchmark::State& state)
{
    const Matrix logits = randomMatrix(2048, 5, 8);
    for (auto _ : state) {
        auto seq = nn::ctcGreedyDecode(logits);
        benchmark::DoNotOptimize(seq.data());
    }
}
BENCHMARK(BM_CtcGreedyDecode);

void
BM_BandedAlignment(benchmark::State& state)
{
    Rng rng(9);
    const auto len = static_cast<std::size_t>(state.range(0));
    genomics::Sequence a = genomics::generateGenome(len, 0.5, rng);
    genomics::Sequence b = a;
    for (std::size_t i = 0; i < b.size(); i += 37)
        b[i] = static_cast<std::uint8_t>((b[i] + 1) % 4);
    for (auto _ : state) {
        auto res = genomics::alignGlobal(a, b);
        benchmark::DoNotOptimize(res.matches);
    }
}
BENCHMARK(BM_BandedAlignment)->Arg(400)->Arg(1000);

void
BM_SquiggleSimulation(benchmark::State& state)
{
    const genomics::PoreModel pore;
    Rng rng(10);
    const genomics::Sequence seq = genomics::generateGenome(400, 0.5, rng);
    const genomics::SignalParams params;
    for (auto _ : state) {
        auto signal = pore.simulate(seq, params, rng);
        benchmark::DoNotOptimize(signal.data());
    }
}
BENCHMARK(BM_SquiggleSimulation);

// ---------------------------------------------------------------------------
// Roofline report
// ---------------------------------------------------------------------------

/** Best-of timing: repeat fn until the budget is spent, keep the minimum. */
template <typename F>
double
bestSeconds(F&& fn, double budget_s)
{
    using Clock = std::chrono::steady_clock;
    fn(); // warmup
    double best = 1e300, spent = 0.0;
    do {
        const auto t0 = Clock::now();
        fn();
        const double dt =
            std::chrono::duration<double>(Clock::now() - t0).count();
        if (dt < best)
            best = dt;
        spent += dt;
    } while (spent < budget_s);
    return best;
}

struct RooflinePoint
{
    std::string kernel;
    std::string level; ///< "scalar" / "avx2" / "mem"
    std::size_t batch = 0; ///< 0 = not batched
    double rate = 0.0;     ///< GFLOPs / GOPS / GB/s
    const char* unit = "gflops";
    double fracPeak = 0.0; ///< achieved / matching ceiling
};

struct RooflineReport
{
    std::vector<RooflinePoint> points;
    std::vector<std::string> lines;

    void
    add(RooflinePoint p)
    {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "{\"bench\":\"roofline\",\"kernel\":\"%s\","
                      "\"level\":\"%s\",\"batch\":%zu,\"%s\":%.4f,"
                      "\"frac_peak\":%.4f}",
                      p.kernel.c_str(), p.level.c_str(), p.batch, p.unit,
                      p.rate, p.fracPeak);
        lines.push_back(buf);
        points.push_back(std::move(p));
    }

    void
    addSpeedup(const std::string& kernel, std::size_t batch, double speedup)
    {
        char buf[192];
        std::snprintf(buf, sizeof(buf),
                      "{\"bench\":\"roofline_speedup\",\"kernel\":\"%s\","
                      "\"batch\":%zu,\"speedup\":%.3f}",
                      kernel.c_str(), batch, speedup);
        lines.push_back(buf);
    }
};

/** Pull a "key":<number> field out of a JSON line; fallback if absent. */
double
jsonNum(const std::string& line, const std::string& key, double fallback)
{
    const std::string needle = "\"" + key + "\":";
    const auto pos = line.find(needle);
    if (pos == std::string::npos)
        return fallback;
    return std::strtod(line.c_str() + pos + needle.size(), nullptr);
}

/** Pull a "key":"value" field out of a JSON line. */
std::string
jsonStr(const std::string& line, const std::string& key)
{
    const std::string needle = "\"" + key + "\":\"";
    const auto pos = line.find(needle);
    if (pos == std::string::npos)
        return {};
    const auto start = pos + needle.size();
    const auto end = line.find('"', start);
    return line.substr(start, end - start);
}

int
runRoofline(bool quick, const std::string& baseline_path,
            const std::string& out_path)
{
    const double budget = quick ? 0.03 : 0.2;
    const std::size_t peak_iters = quick ? 400000 : 4000000;
    const bool avx2_ok = cpuSupportsAvx2();
    RooflineReport report;

    // --- Ceilings: practical peak FMA rate per level, streaming bandwidth.
    double peak[2] = {0.0, 0.0};
    for (int lvl = 0; lvl <= (avx2_ok ? 1 : 0); ++lvl) {
        double flops = 0.0;
        const double secs = bestSeconds(
            [&] { flops = kernels::peakFmaFlops(peak_iters, lvl == 1); },
            budget);
        peak[lvl] = flops / secs / 1e9;
        report.add({"peak_fma", simdLevelName(static_cast<SimdLevel>(lvl)),
                    0, peak[lvl], "gflops", 1.0});
    }

    const std::size_t triad_n = quick ? 1u << 21 : 1u << 23;
    FloatVec ta(triad_n, 1.0f), tb(triad_n, 2.0f), tc(triad_n, 0.0f);
    const double triad_secs = bestSeconds(
        [&] {
            for (std::size_t i = 0; i < triad_n; ++i)
                tc[i] = ta[i] + 0.5f * tb[i];
        },
        budget);
    volatile float sink = tc[triad_n / 2];
    (void)sink;
    const double gbps =
        static_cast<double>(3 * sizeof(float) * triad_n) / triad_secs / 1e9;
    report.add({"triad", "mem", 0, gbps, "gbps", 1.0});

    const auto levels = [&](auto&& fn) {
        for (int lvl = 0; lvl <= (avx2_ok ? 1 : 0); ++lvl) {
            const auto level = static_cast<SimdLevel>(lvl);
            const ScopedSimdLevel scoped(level);
            fn(level);
        }
    };

    // --- gemmBT: the projection / VMM workhorse.
    {
        const std::size_t m = 128, k = 256, n = 1024;
        const Matrix x = randomMatrix(m, k, 1);
        const Matrix w = randomMatrix(n, k, 2);
        Matrix y;
        const double flops = 2.0 * static_cast<double>(m * k * n);
        double scalar_secs = 0.0;
        levels([&](SimdLevel level) {
            const double secs =
                bestSeconds([&] { gemmBT(x, w, y); }, budget);
            const int lvl = static_cast<int>(level);
            report.add({"gemm_bt", simdLevelName(level), 0,
                        flops / secs / 1e9, "gflops",
                        flops / secs / 1e9 / peak[lvl]});
            if (level == SimdLevel::Scalar)
                scalar_secs = secs;
            else
                report.addSpeedup("gemm_bt", 0, scalar_secs / secs);
        });
    }

    // --- Batched multi-lane VMM (noise toggles off: pure compute path).
    {
        constexpr std::size_t kSize = 256, kRowsPerLane = 16;
        crossbar::CrossbarConfig config;
        config.size = kSize;
        const Matrix w = randomMatrix(kSize, kSize, 3);
        const crossbar::CrossbarTile tile(
            config, w, 0.0f, crossbar::NoiseToggles::allOff(), 7);
        for (const std::size_t lanes : {std::size_t{1}, std::size_t{4},
                                        std::size_t{8}}) {
            const Matrix x = randomMatrix(lanes * kRowsPerLane, kSize, 4);
            const BatchLayout layout = uniformLayout(lanes, kRowsPerLane);
            std::vector<Rng> rngs;
            for (std::size_t l = 0; l < lanes; ++l)
                rngs.emplace_back(100 + l);
            std::vector<Rng*> rng_ptrs;
            for (auto& r : rngs)
                rng_ptrs.push_back(&r);
            crossbar::VmmScratch scratch;
            const double flops = 2.0
                * static_cast<double>(lanes * kRowsPerLane * kSize * kSize);
            double scalar_secs = 0.0;
            levels([&](SimdLevel level) {
                const double secs = bestSeconds(
                    [&] {
                        tile.vmmFastLanes(x, layout, rng_ptrs.data(),
                                          scratch);
                    },
                    budget);
                const int lvl = static_cast<int>(level);
                report.add({"vmm_batched", simdLevelName(level), lanes,
                            flops / secs / 1e9, "gflops",
                            flops / secs / 1e9 / peak[lvl]});
                if (level == SimdLevel::Scalar)
                    scalar_secs = secs;
                else
                    report.addSpeedup("vmm_batched", lanes,
                                      scalar_secs / secs);
            });
        }
    }

    // --- Fused LSTM gate block (transcendental-heavy elementwise path).
    {
        constexpr std::size_t kHidden = 256;
        // Nominal flop count per gate unit (pre-adds, 3 sigmoids + 2 tanh
        // at ~12 flops each, cell/hidden update) — fixed so frac_peak is
        // comparable across runs.
        constexpr double kGateFlopsPerUnit = 80.0;
        for (const std::size_t batch : {std::size_t{1}, std::size_t{4},
                                        std::size_t{8}}) {
            const Matrix zi = randomMatrix(batch, 4 * kHidden, 11);
            const Matrix zr = randomMatrix(batch, 4 * kHidden, 12);
            const Matrix b = randomMatrix(1, 4 * kHidden, 13);
            Matrix c(batch, kHidden), h(batch, kHidden);
            const double flops =
                kGateFlopsPerUnit * static_cast<double>(batch * kHidden);
            double scalar_secs = 0.0;
            levels([&](SimdLevel level) {
                const double secs = bestSeconds(
                    [&] {
                        for (std::size_t l = 0; l < batch; ++l)
                            kernels::lstmGateBlock(
                                zi.rowPtr(l), zr.rowPtr(l), b.rowPtr(0),
                                kHidden, c.rowPtr(l), c.rowPtr(l), nullptr,
                                h.rowPtr(l), nullptr);
                    },
                    budget);
                const int lvl = static_cast<int>(level);
                report.add({"lstm_gate", simdLevelName(level), batch,
                            flops / secs / 1e9, "gflops",
                            flops / secs / 1e9 / peak[lvl]});
                if (level == SimdLevel::Scalar)
                    scalar_secs = secs;
                else
                    report.addSpeedup("lstm_gate", batch,
                                      scalar_secs / secs);
            });
        }
    }

    // --- CTC argmax scan (bandwidth-bound; normalized against triad).
    {
        const std::size_t rows = 2048, n = 512;
        const Matrix logits = randomMatrix(rows, n, 8);
        const double bytes =
            static_cast<double>(rows * n) * sizeof(float);
        double scalar_secs = 0.0;
        levels([&](SimdLevel level) {
            const double secs = bestSeconds(
                [&] {
                    std::size_t acc = 0;
                    for (std::size_t t = 0; t < rows; ++t)
                        acc += kernels::argmaxRow(logits.rowPtr(t), n);
                    volatile std::size_t s = acc;
                    (void)s;
                },
                budget);
            report.add({"ctc_argmax", simdLevelName(level), 0,
                        bytes / secs / 1e9, "gbps",
                        bytes / secs / 1e9 / gbps});
            if (level == SimdLevel::Scalar)
                scalar_secs = secs;
            else
                report.addSpeedup("ctc_argmax", 0, scalar_secs / secs);
        });
    }

    // --- int8 matmul (integer GOPS; frac vs the float FMA peak is an
    //     equivalent-rate tracking ratio, not a true integer ceiling).
    {
        const std::size_t m = 128, k = 256, n = 1024;
        const Matrix xf = randomMatrix(m, k, 21);
        const Matrix wf = randomMatrix(n, k, 22);
        const Int8Tensor wq = Int8Tensor::fromMatrix(wf);
        Int8Vec xq;
        const float x_scale = quantizeRowsInt8(xf, 0, m, xq);
        Matrix y(m, n);
        const double ops =
            2.0 * static_cast<double>(m) * static_cast<double>(wq.stride)
            * static_cast<double>(n);
        double scalar_secs = 0.0;
        levels([&](SimdLevel level) {
            const double secs = bestSeconds(
                [&] {
                    kernels::int8Matmul(xq.data(), m, x_scale, wq, y, 0);
                },
                budget);
            const int lvl = static_cast<int>(level);
            report.add({"int8_gemm", simdLevelName(level), 0,
                        ops / secs / 1e9, "gops",
                        ops / secs / 1e9 / peak[lvl]});
            if (level == SimdLevel::Scalar)
                scalar_secs = secs;
            else
                report.addSpeedup("int8_gemm", 0, scalar_secs / secs);
        });
    }

    for (const std::string& line : report.lines)
        std::printf("%s\n", line.c_str());
    if (!out_path.empty()) {
        std::ofstream out(out_path);
        for (const std::string& line : report.lines)
            out << line << "\n";
        if (!out) {
            std::fprintf(stderr, "roofline: failed to write %s\n",
                         out_path.c_str());
            return 2;
        }
    }

    // --- Regression gate vs the checked-in baseline: each baseline point
    //     must retain at least 80% of its frac_peak.
    if (!baseline_path.empty()) {
        std::ifstream in(baseline_path);
        if (!in) {
            std::fprintf(stderr, "roofline: cannot open baseline %s\n",
                         baseline_path.c_str());
            return 2;
        }
        int failures = 0;
        std::string line;
        while (std::getline(in, line)) {
            if (line.find("\"roofline\"") == std::string::npos)
                continue;
            const std::string kernel = jsonStr(line, "kernel");
            const std::string level = jsonStr(line, "level");
            if (kernel.empty() || kernel == "peak_fma" || kernel == "triad")
                continue;
            const auto batch = static_cast<std::size_t>(
                jsonNum(line, "batch", 0.0));
            const double base_frac = jsonNum(line, "frac_peak", 0.0);
            if (base_frac <= 0.0)
                continue;
            const RooflinePoint* match = nullptr;
            for (const RooflinePoint& p : report.points)
                if (p.kernel == kernel && p.level == level
                    && p.batch == batch)
                    match = &p;
            if (match == nullptr) {
                // A missing level (e.g. avx2 baseline on a scalar-only
                // host) is a skip, not a regression.
                continue;
            }
            if (match->fracPeak < 0.8 * base_frac) {
                std::fprintf(stderr,
                             "roofline: REGRESSION %s/%s batch=%zu: "
                             "frac_peak %.4f < 0.8 * baseline %.4f\n",
                             kernel.c_str(), level.c_str(), batch,
                             match->fracPeak, base_frac);
                ++failures;
            }
        }
        if (failures > 0)
            return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    bool roofline = false, quick = false;
    std::string baseline, out;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--roofline") == 0)
            roofline = true;
        else if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc)
            baseline = argv[++i];
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out = argv[++i];
    }
    if (roofline)
        return runRoofline(quick, baseline, out);

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
