/**
 * @file
 * Shared scaffolding for the table/figure reproduction benches: one
 * ExperimentContext per process, paper-style number formatting, and
 * environment-tunable evaluation sizes.
 *
 * Environment knobs (read once at startup into util::RuntimeConfig; also
 * see core/context.h):
 *   SWORDFISH_FAST=1            shrink everything for a smoke run
 *   SWORDFISH_EVAL_READS=N      reads per accuracy measurement
 *   SWORDFISH_EVAL_RUNS=N       noisy instantiations per error bar
 *   SWORDFISH_RETRAIN_EPOCHS=N  enhancer fine-tune epochs
 *   SWORDFISH_ARTIFACTS=dir     artifact cache directory
 *   SWORDFISH_THREADS=N         evaluation pool workers (0 = serial;
 *                               default: hardware concurrency)
 *   SWORDFISH_BATCH=N           reads batched per crossbar VMM (default 1)
 */

#ifndef SWORDFISH_BENCH_COMMON_H
#define SWORDFISH_BENCH_COMMON_H

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/swordfish.h"
#include "util/env.h"
#include "util/table.h"
#include "util/timer.h"

namespace swordfish::bench {

/** Percentage string with paper-style two decimals ("97.32%"). */
inline std::string
pct(double fraction)
{
    return TextTable::num(fraction * 100.0, 2) + "%";
}

/** Mean +- stddev percentage cell. */
inline std::string
pctErr(const core::AccuracySummary& s)
{
    return TextTable::num(s.mean * 100.0, 2) + "+-"
        + TextTable::num(s.stddev * 100.0, 2) + "%";
}

/** Enhancer fine-tune epochs (env-tunable; benches default to 1). */
inline std::size_t
retrainEpochs()
{
    const long n = runtimeConfig().retrainEpochs;
    return n >= 0 ? static_cast<std::size_t>(n) : 1;
}

/**
 * The standard bench evaluation request over one dataset: env-sized runs
 * and reads (optionally capped), batch capacity from SWORDFISH_BATCH.
 * Chain further knobs onto the returned builder as needed.
 */
inline core::EvalOptions
benchEval(const genomics::Dataset& ds, std::size_t runs_default = 5,
          std::size_t reads_cap = 0)
{
    std::size_t reads = core::ExperimentContext::evalReads();
    if (reads_cap > 0)
        reads = std::min(reads, reads_cap);
    return core::EvalOptions(ds)
        .runs(core::ExperimentContext::evalRuns(runs_default))
        .maxReads(reads);
}

/**
 * Dataset-averaged non-ideal accuracy: the evaluation-loop boilerplate the
 * figure drivers share. `proto` carries every knob except the dataset,
 * which is overridden per iteration.
 */
inline double
meanNonIdealAccuracy(nn::SequenceModel& model,
                     const core::NonIdealSetup& setup,
                     const std::vector<genomics::Dataset>& datasets,
                     core::EvalRequest proto)
{
    double sum = 0.0;
    for (const auto& ds : datasets) {
        proto.dataset = &ds;
        sum += core::evaluateNonIdealAccuracy(model, setup, proto).mean;
    }
    return datasets.empty()
        ? 0.0 : sum / static_cast<double>(datasets.size());
}

/** Dataset-averaged digital fixed-point accuracy (Fig. 10 loops). */
inline double
meanQuantizedAccuracy(const nn::SequenceModel& model,
                      const QuantConfig& quant,
                      const std::vector<genomics::Dataset>& datasets,
                      core::EvalRequest proto)
{
    double sum = 0.0;
    for (const auto& ds : datasets) {
        proto.dataset = &ds;
        sum += core::evaluateQuantizedAccuracy(model, quant, proto);
    }
    return datasets.empty()
        ? 0.0 : sum / static_cast<double>(datasets.size());
}

/** FP32 baseline accuracy averaged over the context's datasets. */
inline double
meanBaselineAccuracy(core::ExperimentContext& ctx)
{
    double sum = 0.0;
    for (std::size_t d = 0; d < ctx.datasets().size(); ++d)
        sum += ctx.baselineAccuracy(d);
    return ctx.datasets().empty()
        ? 0.0 : sum / static_cast<double>(ctx.datasets().size());
}

/**
 * Pure write-variation scenario (Figs. 7 and 11): synaptic variation only,
 * wire and sneak effects disabled so the sweep isolates programming noise.
 */
inline core::NonIdealityConfig
writeVariationScenario(double rate, std::size_t size = 64)
{
    core::NonIdealityConfig cfg;
    cfg.kind = core::NonIdealityKind::SynapticWires;
    cfg.crossbar.size = size;
    cfg.crossbar.writeVariationRate = rate;
    cfg.crossbar.wire.segmentResistanceRatio = 0.0;
    cfg.crossbar.wire.sneakCoefficient = 0.0;
    return cfg;
}

/** The write-variation rates swept in Figs. 7 and 11. */
inline std::vector<double>
writeVariationSweep()
{
    return {0.0, 0.05, 0.10, 0.15, 0.25, 0.40};
}

/** Print the standard bench header naming the experiment. */
inline void
banner(const std::string& what)
{
    std::printf("==============================================\n");
    std::printf("Swordfish reproduction: %s\n", what.c_str());
    std::printf("==============================================\n");
}

} // namespace swordfish::bench

#endif // SWORDFISH_BENCH_COMMON_H
