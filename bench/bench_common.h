/**
 * @file
 * Shared scaffolding for the table/figure reproduction benches: one
 * ExperimentContext per process, paper-style number formatting, and
 * environment-tunable evaluation sizes.
 *
 * Environment knobs (also see core/context.h):
 *   SWORDFISH_FAST=1            shrink everything for a smoke run
 *   SWORDFISH_EVAL_READS=N      reads per accuracy measurement
 *   SWORDFISH_EVAL_RUNS=N       noisy instantiations per error bar
 *   SWORDFISH_RETRAIN_EPOCHS=N  enhancer fine-tune epochs
 *   SWORDFISH_ARTIFACTS=dir     artifact cache directory
 *   SWORDFISH_THREADS=N         evaluation pool workers (0 = serial;
 *                               default: hardware concurrency)
 */

#ifndef SWORDFISH_BENCH_COMMON_H
#define SWORDFISH_BENCH_COMMON_H

#include <cstdio>
#include <string>

#include "core/swordfish.h"
#include "util/env.h"
#include "util/table.h"
#include "util/timer.h"

namespace swordfish::bench {

/** Percentage string with paper-style two decimals ("97.32%"). */
inline std::string
pct(double fraction)
{
    return TextTable::num(fraction * 100.0, 2) + "%";
}

/** Mean +- stddev percentage cell. */
inline std::string
pctErr(const core::AccuracySummary& s)
{
    return TextTable::num(s.mean * 100.0, 2) + "+-"
        + TextTable::num(s.stddev * 100.0, 2) + "%";
}

/** Enhancer fine-tune epochs (env-tunable; benches default to 1). */
inline std::size_t
retrainEpochs()
{
    return static_cast<std::size_t>(
        envLong("SWORDFISH_RETRAIN_EPOCHS", fastMode() ? 1 : 1));
}

/**
 * Pure write-variation scenario (Figs. 7 and 11): synaptic variation only,
 * wire and sneak effects disabled so the sweep isolates programming noise.
 */
inline core::NonIdealityConfig
writeVariationScenario(double rate, std::size_t size = 64)
{
    core::NonIdealityConfig cfg;
    cfg.kind = core::NonIdealityKind::SynapticWires;
    cfg.crossbar.size = size;
    cfg.crossbar.writeVariationRate = rate;
    cfg.crossbar.wire.segmentResistanceRatio = 0.0;
    cfg.crossbar.wire.sneakCoefficient = 0.0;
    return cfg;
}

/** The write-variation rates swept in Figs. 7 and 11. */
inline std::vector<double>
writeVariationSweep()
{
    return {0.0, 0.05, 0.10, 0.15, 0.25, 0.40};
}

/** Print the standard bench header naming the experiment. */
inline void
banner(const std::string& what)
{
    std::printf("==============================================\n");
    std::printf("Swordfish reproduction: %s\n", what.c_str());
    std::printf("==============================================\n");
}

} // namespace swordfish::bench

#endif // SWORDFISH_BENCH_COMMON_H
