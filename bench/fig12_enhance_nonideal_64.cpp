/**
 * @file
 * Fig. 12 reproduction: accuracy after enhancement mechanisms for the
 * evaluated non-idealities on 64x64 crossbars (paper Section 5.4.2).
 */

#include "enhance_nonideal_table.h"

int
main()
{
    return swordfish::bench::runEnhanceNonIdealTable(64, "Fig. 12");
}
