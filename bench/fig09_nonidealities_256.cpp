/**
 * @file
 * Fig. 9 reproduction: accuracy after accounting for non-idealities on
 * 256x256 crossbars for D1-D4 (paper Section 5.2.2).
 */

#include "nonideality_table.h"

int
main()
{
    return swordfish::bench::runNonIdealityTable(256, "Fig. 9");
}
