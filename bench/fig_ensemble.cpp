/**
 * @file
 * Extension figure: layer ensemble averaging as a non-ideality
 * mitigation. Sweeps the replica count K x noise composition for the
 * Combined scenario on 64x64 arrays and reports accuracy alongside the
 * area/energy cost of the extra replicas (arrays and row drivers scale
 * with K; the shared post-average ADC bank does not).
 *
 * Compositions are SWORDFISH_NOISE-grammar deltas on the Combined
 * preset (core::NoiseModel::parse), so the sweep exercises the
 * composable-noise layer end to end.
 */

#include "bench_common.h"

#include "arch/energy.h"

using namespace swordfish;
using namespace swordfish::bench;
using namespace swordfish::core;
using namespace swordfish::arch;

int
main()
{
    banner("Ext - layer ensemble averaging (K x noise composition)");

    ExperimentContext ctx;
    auto student = quantizeModel(ctx.teacher(), QuantConfig::deployment());
    const EvalRequest proto = benchEval(ctx.datasets().front(), 3, 8);
    const auto map = buildPartitionMap(ctx.teacher(), 64);
    const AreaParams area_params;
    const EnergyParams energy_params;
    const TimingParams timing;

    // Deltas composed onto the Combined preset ("" = the preset alone).
    const struct { const char* label; const char* spec; } compositions[] = {
        {"combined", ""},
        {"+rtn", "rtn.amp=0.08,rtn.dwell_up=4,rtn.dwell_down=2"},
        {"+rtn+cwrite", "rtn.amp=0.08,rtn.dwell_up=4,rtn.dwell_down=2,"
                        "cwrite.sigma=0.15,cwrite.len=4"},
    };

    std::printf("Original Bonito(Lite) accuracy: %s\n\n",
                pct(meanBaselineAccuracy(ctx)).c_str());

    TextTable table;
    std::vector<std::string> header = {"K"};
    for (const auto& c : compositions)
        header.push_back(c.label);
    header.push_back("Area (mm^2)");
    header.push_back("Energy (uJ/kb)");
    table.header(header);

    WorkloadProfile wl;
    const auto& ds0 = ctx.datasets().front();
    wl.samplesPerBase = ds0.spec.signal.dwellMean;
    wl.convStride = ExperimentContext::modelConfig().convStride;
    wl.meanReadLenBases = static_cast<double>(ds0.totalBases())
        / static_cast<double>(ds0.reads.size());
    wl.batch = runtimeConfig().batchSize();

    for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                          std::size_t{8}}) {
        std::vector<std::string> row = {std::to_string(k)};
        for (const auto& c : compositions) {
            NonIdealityConfig scenario;
            scenario.kind = NonIdealityKind::Combined;
            scenario.crossbar.size = 64;
            scenario.noise = c.spec;
            EvalRequest req = proto;
            req.ensembleK = k;
            double sum = 0.0;
            for (const auto& ds : ctx.datasets()) {
                req.dataset = &ds;
                sum += evaluateNonIdealAccuracy(student, {scenario, {}},
                                                req).mean;
            }
            row.push_back(pct(
                sum / static_cast<double>(ctx.datasets().size())));
        }
        const auto area = computeArea(map, area_params, 0.0, 16, k);
        const auto energy = estimateEnergy(Variant::Ideal, map, timing,
                                           energy_params, wl, -1.0, k);
        row.push_back(TextTable::num(area.totalMm2, 3));
        row.push_back(TextTable::num(energy.ujPerKb, 3));
        table.row(row);
        std::fflush(stdout);
    }
    table.print();
    std::printf("\nShape: averaging K independent replicas before the "
                "shared ADC suppresses uncorrelated device noise roughly "
                "as 1/sqrt(K), at K-fold array and driver cost; the "
                "spatially correlated component does not average away.\n");
    return 0;
}
