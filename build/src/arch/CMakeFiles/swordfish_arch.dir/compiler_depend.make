# Empty compiler generated dependencies file for swordfish_arch.
# This may be replaced when dependencies are built.
