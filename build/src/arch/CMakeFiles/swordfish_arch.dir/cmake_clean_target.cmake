file(REMOVE_RECURSE
  "libswordfish_arch.a"
)
