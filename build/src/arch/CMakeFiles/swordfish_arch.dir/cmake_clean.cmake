file(REMOVE_RECURSE
  "CMakeFiles/swordfish_arch.dir/area.cpp.o"
  "CMakeFiles/swordfish_arch.dir/area.cpp.o.d"
  "CMakeFiles/swordfish_arch.dir/energy.cpp.o"
  "CMakeFiles/swordfish_arch.dir/energy.cpp.o.d"
  "CMakeFiles/swordfish_arch.dir/partition.cpp.o"
  "CMakeFiles/swordfish_arch.dir/partition.cpp.o.d"
  "CMakeFiles/swordfish_arch.dir/throughput.cpp.o"
  "CMakeFiles/swordfish_arch.dir/throughput.cpp.o.d"
  "libswordfish_arch.a"
  "libswordfish_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swordfish_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
