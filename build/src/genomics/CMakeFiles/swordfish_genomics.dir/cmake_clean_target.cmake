file(REMOVE_RECURSE
  "libswordfish_genomics.a"
)
