
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/genomics/align.cpp" "src/genomics/CMakeFiles/swordfish_genomics.dir/align.cpp.o" "gcc" "src/genomics/CMakeFiles/swordfish_genomics.dir/align.cpp.o.d"
  "/root/repo/src/genomics/dataset.cpp" "src/genomics/CMakeFiles/swordfish_genomics.dir/dataset.cpp.o" "gcc" "src/genomics/CMakeFiles/swordfish_genomics.dir/dataset.cpp.o.d"
  "/root/repo/src/genomics/io.cpp" "src/genomics/CMakeFiles/swordfish_genomics.dir/io.cpp.o" "gcc" "src/genomics/CMakeFiles/swordfish_genomics.dir/io.cpp.o.d"
  "/root/repo/src/genomics/mapper.cpp" "src/genomics/CMakeFiles/swordfish_genomics.dir/mapper.cpp.o" "gcc" "src/genomics/CMakeFiles/swordfish_genomics.dir/mapper.cpp.o.d"
  "/root/repo/src/genomics/pore_model.cpp" "src/genomics/CMakeFiles/swordfish_genomics.dir/pore_model.cpp.o" "gcc" "src/genomics/CMakeFiles/swordfish_genomics.dir/pore_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/swordfish_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
