# Empty dependencies file for swordfish_genomics.
# This may be replaced when dependencies are built.
