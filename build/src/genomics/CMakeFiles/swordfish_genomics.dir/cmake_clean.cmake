file(REMOVE_RECURSE
  "CMakeFiles/swordfish_genomics.dir/align.cpp.o"
  "CMakeFiles/swordfish_genomics.dir/align.cpp.o.d"
  "CMakeFiles/swordfish_genomics.dir/dataset.cpp.o"
  "CMakeFiles/swordfish_genomics.dir/dataset.cpp.o.d"
  "CMakeFiles/swordfish_genomics.dir/io.cpp.o"
  "CMakeFiles/swordfish_genomics.dir/io.cpp.o.d"
  "CMakeFiles/swordfish_genomics.dir/mapper.cpp.o"
  "CMakeFiles/swordfish_genomics.dir/mapper.cpp.o.d"
  "CMakeFiles/swordfish_genomics.dir/pore_model.cpp.o"
  "CMakeFiles/swordfish_genomics.dir/pore_model.cpp.o.d"
  "libswordfish_genomics.a"
  "libswordfish_genomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swordfish_genomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
