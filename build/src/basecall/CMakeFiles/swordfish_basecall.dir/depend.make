# Empty dependencies file for swordfish_basecall.
# This may be replaced when dependencies are built.
