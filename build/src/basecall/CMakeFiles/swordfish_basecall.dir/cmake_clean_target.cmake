file(REMOVE_RECURSE
  "libswordfish_basecall.a"
)
