file(REMOVE_RECURSE
  "CMakeFiles/swordfish_basecall.dir/basecaller.cpp.o"
  "CMakeFiles/swordfish_basecall.dir/basecaller.cpp.o.d"
  "CMakeFiles/swordfish_basecall.dir/bonito_lite.cpp.o"
  "CMakeFiles/swordfish_basecall.dir/bonito_lite.cpp.o.d"
  "CMakeFiles/swordfish_basecall.dir/chunker.cpp.o"
  "CMakeFiles/swordfish_basecall.dir/chunker.cpp.o.d"
  "CMakeFiles/swordfish_basecall.dir/pipeline.cpp.o"
  "CMakeFiles/swordfish_basecall.dir/pipeline.cpp.o.d"
  "CMakeFiles/swordfish_basecall.dir/trainer.cpp.o"
  "CMakeFiles/swordfish_basecall.dir/trainer.cpp.o.d"
  "libswordfish_basecall.a"
  "libswordfish_basecall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swordfish_basecall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
