
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/basecall/basecaller.cpp" "src/basecall/CMakeFiles/swordfish_basecall.dir/basecaller.cpp.o" "gcc" "src/basecall/CMakeFiles/swordfish_basecall.dir/basecaller.cpp.o.d"
  "/root/repo/src/basecall/bonito_lite.cpp" "src/basecall/CMakeFiles/swordfish_basecall.dir/bonito_lite.cpp.o" "gcc" "src/basecall/CMakeFiles/swordfish_basecall.dir/bonito_lite.cpp.o.d"
  "/root/repo/src/basecall/chunker.cpp" "src/basecall/CMakeFiles/swordfish_basecall.dir/chunker.cpp.o" "gcc" "src/basecall/CMakeFiles/swordfish_basecall.dir/chunker.cpp.o.d"
  "/root/repo/src/basecall/pipeline.cpp" "src/basecall/CMakeFiles/swordfish_basecall.dir/pipeline.cpp.o" "gcc" "src/basecall/CMakeFiles/swordfish_basecall.dir/pipeline.cpp.o.d"
  "/root/repo/src/basecall/trainer.cpp" "src/basecall/CMakeFiles/swordfish_basecall.dir/trainer.cpp.o" "gcc" "src/basecall/CMakeFiles/swordfish_basecall.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/swordfish_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/genomics/CMakeFiles/swordfish_genomics.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/swordfish_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/swordfish_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
