file(REMOVE_RECURSE
  "CMakeFiles/swordfish_tensor.dir/matrix.cpp.o"
  "CMakeFiles/swordfish_tensor.dir/matrix.cpp.o.d"
  "libswordfish_tensor.a"
  "libswordfish_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swordfish_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
