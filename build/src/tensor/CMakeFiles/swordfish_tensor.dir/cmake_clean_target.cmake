file(REMOVE_RECURSE
  "libswordfish_tensor.a"
)
