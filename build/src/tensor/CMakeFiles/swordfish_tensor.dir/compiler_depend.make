# Empty compiler generated dependencies file for swordfish_tensor.
# This may be replaced when dependencies are built.
