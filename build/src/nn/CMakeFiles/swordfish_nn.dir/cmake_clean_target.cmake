file(REMOVE_RECURSE
  "libswordfish_nn.a"
)
