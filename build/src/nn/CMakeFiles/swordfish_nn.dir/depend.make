# Empty dependencies file for swordfish_nn.
# This may be replaced when dependencies are built.
