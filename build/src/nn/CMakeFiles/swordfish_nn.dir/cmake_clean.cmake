file(REMOVE_RECURSE
  "CMakeFiles/swordfish_nn.dir/conv1d.cpp.o"
  "CMakeFiles/swordfish_nn.dir/conv1d.cpp.o.d"
  "CMakeFiles/swordfish_nn.dir/ctc.cpp.o"
  "CMakeFiles/swordfish_nn.dir/ctc.cpp.o.d"
  "CMakeFiles/swordfish_nn.dir/linear.cpp.o"
  "CMakeFiles/swordfish_nn.dir/linear.cpp.o.d"
  "CMakeFiles/swordfish_nn.dir/lstm.cpp.o"
  "CMakeFiles/swordfish_nn.dir/lstm.cpp.o.d"
  "CMakeFiles/swordfish_nn.dir/model.cpp.o"
  "CMakeFiles/swordfish_nn.dir/model.cpp.o.d"
  "CMakeFiles/swordfish_nn.dir/module.cpp.o"
  "CMakeFiles/swordfish_nn.dir/module.cpp.o.d"
  "CMakeFiles/swordfish_nn.dir/optimizer.cpp.o"
  "CMakeFiles/swordfish_nn.dir/optimizer.cpp.o.d"
  "libswordfish_nn.a"
  "libswordfish_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swordfish_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
