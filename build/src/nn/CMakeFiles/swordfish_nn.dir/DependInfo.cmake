
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/conv1d.cpp" "src/nn/CMakeFiles/swordfish_nn.dir/conv1d.cpp.o" "gcc" "src/nn/CMakeFiles/swordfish_nn.dir/conv1d.cpp.o.d"
  "/root/repo/src/nn/ctc.cpp" "src/nn/CMakeFiles/swordfish_nn.dir/ctc.cpp.o" "gcc" "src/nn/CMakeFiles/swordfish_nn.dir/ctc.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/swordfish_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/swordfish_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/nn/CMakeFiles/swordfish_nn.dir/lstm.cpp.o" "gcc" "src/nn/CMakeFiles/swordfish_nn.dir/lstm.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/swordfish_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/swordfish_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/swordfish_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/swordfish_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/swordfish_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/swordfish_nn.dir/optimizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/swordfish_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/swordfish_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
