# Empty dependencies file for swordfish_crossbar.
# This may be replaced when dependencies are built.
