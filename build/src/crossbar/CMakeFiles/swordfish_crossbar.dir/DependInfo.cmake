
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crossbar/converters.cpp" "src/crossbar/CMakeFiles/swordfish_crossbar.dir/converters.cpp.o" "gcc" "src/crossbar/CMakeFiles/swordfish_crossbar.dir/converters.cpp.o.d"
  "/root/repo/src/crossbar/crossbar.cpp" "src/crossbar/CMakeFiles/swordfish_crossbar.dir/crossbar.cpp.o" "gcc" "src/crossbar/CMakeFiles/swordfish_crossbar.dir/crossbar.cpp.o.d"
  "/root/repo/src/crossbar/library.cpp" "src/crossbar/CMakeFiles/swordfish_crossbar.dir/library.cpp.o" "gcc" "src/crossbar/CMakeFiles/swordfish_crossbar.dir/library.cpp.o.d"
  "/root/repo/src/crossbar/mapping.cpp" "src/crossbar/CMakeFiles/swordfish_crossbar.dir/mapping.cpp.o" "gcc" "src/crossbar/CMakeFiles/swordfish_crossbar.dir/mapping.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/swordfish_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/swordfish_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
