file(REMOVE_RECURSE
  "CMakeFiles/swordfish_crossbar.dir/converters.cpp.o"
  "CMakeFiles/swordfish_crossbar.dir/converters.cpp.o.d"
  "CMakeFiles/swordfish_crossbar.dir/crossbar.cpp.o"
  "CMakeFiles/swordfish_crossbar.dir/crossbar.cpp.o.d"
  "CMakeFiles/swordfish_crossbar.dir/library.cpp.o"
  "CMakeFiles/swordfish_crossbar.dir/library.cpp.o.d"
  "CMakeFiles/swordfish_crossbar.dir/mapping.cpp.o"
  "CMakeFiles/swordfish_crossbar.dir/mapping.cpp.o.d"
  "libswordfish_crossbar.a"
  "libswordfish_crossbar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swordfish_crossbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
