file(REMOVE_RECURSE
  "libswordfish_crossbar.a"
)
