file(REMOVE_RECURSE
  "CMakeFiles/swordfish_util.dir/logging.cpp.o"
  "CMakeFiles/swordfish_util.dir/logging.cpp.o.d"
  "libswordfish_util.a"
  "libswordfish_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swordfish_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
