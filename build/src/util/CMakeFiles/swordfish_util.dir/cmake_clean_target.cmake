file(REMOVE_RECURSE
  "libswordfish_util.a"
)
