# Empty compiler generated dependencies file for swordfish_util.
# This may be replaced when dependencies are built.
