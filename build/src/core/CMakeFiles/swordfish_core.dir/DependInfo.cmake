
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/context.cpp" "src/core/CMakeFiles/swordfish_core.dir/context.cpp.o" "gcc" "src/core/CMakeFiles/swordfish_core.dir/context.cpp.o.d"
  "/root/repo/src/core/enhancer.cpp" "src/core/CMakeFiles/swordfish_core.dir/enhancer.cpp.o" "gcc" "src/core/CMakeFiles/swordfish_core.dir/enhancer.cpp.o.d"
  "/root/repo/src/core/evaluator.cpp" "src/core/CMakeFiles/swordfish_core.dir/evaluator.cpp.o" "gcc" "src/core/CMakeFiles/swordfish_core.dir/evaluator.cpp.o.d"
  "/root/repo/src/core/vmm_backend.cpp" "src/core/CMakeFiles/swordfish_core.dir/vmm_backend.cpp.o" "gcc" "src/core/CMakeFiles/swordfish_core.dir/vmm_backend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crossbar/CMakeFiles/swordfish_crossbar.dir/DependInfo.cmake"
  "/root/repo/build/src/basecall/CMakeFiles/swordfish_basecall.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/swordfish_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/genomics/CMakeFiles/swordfish_genomics.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/swordfish_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/swordfish_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/swordfish_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
