# Empty compiler generated dependencies file for swordfish_core.
# This may be replaced when dependencies are built.
