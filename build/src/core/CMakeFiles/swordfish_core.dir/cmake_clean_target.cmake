file(REMOVE_RECURSE
  "libswordfish_core.a"
)
