file(REMOVE_RECURSE
  "CMakeFiles/swordfish_core.dir/context.cpp.o"
  "CMakeFiles/swordfish_core.dir/context.cpp.o.d"
  "CMakeFiles/swordfish_core.dir/enhancer.cpp.o"
  "CMakeFiles/swordfish_core.dir/enhancer.cpp.o.d"
  "CMakeFiles/swordfish_core.dir/evaluator.cpp.o"
  "CMakeFiles/swordfish_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/swordfish_core.dir/vmm_backend.cpp.o"
  "CMakeFiles/swordfish_core.dir/vmm_backend.cpp.o.d"
  "libswordfish_core.a"
  "libswordfish_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swordfish_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
