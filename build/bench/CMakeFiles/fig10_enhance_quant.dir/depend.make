# Empty dependencies file for fig10_enhance_quant.
# This may be replaced when dependencies are built.
