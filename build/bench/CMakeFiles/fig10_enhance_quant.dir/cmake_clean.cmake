file(REMOVE_RECURSE
  "CMakeFiles/fig10_enhance_quant.dir/fig10_enhance_quant.cpp.o"
  "CMakeFiles/fig10_enhance_quant.dir/fig10_enhance_quant.cpp.o.d"
  "fig10_enhance_quant"
  "fig10_enhance_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_enhance_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
