file(REMOVE_RECURSE
  "CMakeFiles/ext_drift_retention.dir/ext_drift_retention.cpp.o"
  "CMakeFiles/ext_drift_retention.dir/ext_drift_retention.cpp.o.d"
  "ext_drift_retention"
  "ext_drift_retention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_drift_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
