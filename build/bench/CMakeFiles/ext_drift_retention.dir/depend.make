# Empty dependencies file for ext_drift_retention.
# This may be replaced when dependencies are built.
