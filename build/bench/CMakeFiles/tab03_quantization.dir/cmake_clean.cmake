file(REMOVE_RECURSE
  "CMakeFiles/tab03_quantization.dir/tab03_quantization.cpp.o"
  "CMakeFiles/tab03_quantization.dir/tab03_quantization.cpp.o.d"
  "tab03_quantization"
  "tab03_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
