# Empty compiler generated dependencies file for tab03_quantization.
# This may be replaced when dependencies are built.
