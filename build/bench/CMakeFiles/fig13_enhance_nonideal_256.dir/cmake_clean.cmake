file(REMOVE_RECURSE
  "CMakeFiles/fig13_enhance_nonideal_256.dir/fig13_enhance_nonideal_256.cpp.o"
  "CMakeFiles/fig13_enhance_nonideal_256.dir/fig13_enhance_nonideal_256.cpp.o.d"
  "fig13_enhance_nonideal_256"
  "fig13_enhance_nonideal_256.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_enhance_nonideal_256.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
