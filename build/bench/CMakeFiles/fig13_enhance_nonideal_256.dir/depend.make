# Empty dependencies file for fig13_enhance_nonideal_256.
# This may be replaced when dependencies are built.
