file(REMOVE_RECURSE
  "CMakeFiles/fig11_enhance_writevar.dir/fig11_enhance_writevar.cpp.o"
  "CMakeFiles/fig11_enhance_writevar.dir/fig11_enhance_writevar.cpp.o.d"
  "fig11_enhance_writevar"
  "fig11_enhance_writevar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_enhance_writevar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
