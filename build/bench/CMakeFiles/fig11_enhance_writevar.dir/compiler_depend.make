# Empty compiler generated dependencies file for fig11_enhance_writevar.
# This may be replaced when dependencies are built.
