# Empty compiler generated dependencies file for fig15_area_accuracy.
# This may be replaced when dependencies are built.
