file(REMOVE_RECURSE
  "CMakeFiles/fig15_area_accuracy.dir/fig15_area_accuracy.cpp.o"
  "CMakeFiles/fig15_area_accuracy.dir/fig15_area_accuracy.cpp.o.d"
  "fig15_area_accuracy"
  "fig15_area_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_area_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
