file(REMOVE_RECURSE
  "CMakeFiles/tab01_device_config.dir/tab01_device_config.cpp.o"
  "CMakeFiles/tab01_device_config.dir/tab01_device_config.cpp.o.d"
  "tab01_device_config"
  "tab01_device_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_device_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
