# Empty compiler generated dependencies file for tab01_device_config.
# This may be replaced when dependencies are built.
