# Empty compiler generated dependencies file for fig08_nonidealities_64.
# This may be replaced when dependencies are built.
