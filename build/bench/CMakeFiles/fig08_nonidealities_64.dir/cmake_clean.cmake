file(REMOVE_RECURSE
  "CMakeFiles/fig08_nonidealities_64.dir/fig08_nonidealities_64.cpp.o"
  "CMakeFiles/fig08_nonidealities_64.dir/fig08_nonidealities_64.cpp.o.d"
  "fig08_nonidealities_64"
  "fig08_nonidealities_64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_nonidealities_64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
