file(REMOVE_RECURSE
  "CMakeFiles/fig09_nonidealities_256.dir/fig09_nonidealities_256.cpp.o"
  "CMakeFiles/fig09_nonidealities_256.dir/fig09_nonidealities_256.cpp.o.d"
  "fig09_nonidealities_256"
  "fig09_nonidealities_256.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_nonidealities_256.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
