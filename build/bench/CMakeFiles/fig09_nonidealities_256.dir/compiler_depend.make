# Empty compiler generated dependencies file for fig09_nonidealities_256.
# This may be replaced when dependencies are built.
