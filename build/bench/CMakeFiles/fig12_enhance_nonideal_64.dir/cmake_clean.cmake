file(REMOVE_RECURSE
  "CMakeFiles/fig12_enhance_nonideal_64.dir/fig12_enhance_nonideal_64.cpp.o"
  "CMakeFiles/fig12_enhance_nonideal_64.dir/fig12_enhance_nonideal_64.cpp.o.d"
  "fig12_enhance_nonideal_64"
  "fig12_enhance_nonideal_64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_enhance_nonideal_64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
