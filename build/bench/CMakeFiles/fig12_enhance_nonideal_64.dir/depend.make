# Empty dependencies file for fig12_enhance_nonideal_64.
# This may be replaced when dependencies are built.
