file(REMOVE_RECURSE
  "CMakeFiles/tab02_datasets.dir/tab02_datasets.cpp.o"
  "CMakeFiles/tab02_datasets.dir/tab02_datasets.cpp.o.d"
  "tab02_datasets"
  "tab02_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
