# Empty compiler generated dependencies file for tab02_datasets.
# This may be replaced when dependencies are built.
