# Empty compiler generated dependencies file for fig01_pipeline_breakdown.
# This may be replaced when dependencies are built.
