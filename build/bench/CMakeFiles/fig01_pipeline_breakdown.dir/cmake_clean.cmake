file(REMOVE_RECURSE
  "CMakeFiles/fig01_pipeline_breakdown.dir/fig01_pipeline_breakdown.cpp.o"
  "CMakeFiles/fig01_pipeline_breakdown.dir/fig01_pipeline_breakdown.cpp.o.d"
  "fig01_pipeline_breakdown"
  "fig01_pipeline_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_pipeline_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
