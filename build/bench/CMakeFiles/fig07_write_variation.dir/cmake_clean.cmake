file(REMOVE_RECURSE
  "CMakeFiles/fig07_write_variation.dir/fig07_write_variation.cpp.o"
  "CMakeFiles/fig07_write_variation.dir/fig07_write_variation.cpp.o.d"
  "fig07_write_variation"
  "fig07_write_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_write_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
