# Empty compiler generated dependencies file for fig07_write_variation.
# This may be replaced when dependencies are built.
