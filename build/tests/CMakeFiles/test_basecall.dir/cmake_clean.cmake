file(REMOVE_RECURSE
  "CMakeFiles/test_basecall.dir/test_basecall.cpp.o"
  "CMakeFiles/test_basecall.dir/test_basecall.cpp.o.d"
  "test_basecall"
  "test_basecall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_basecall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
