# Empty compiler generated dependencies file for test_basecall.
# This may be replaced when dependencies are built.
