file(REMOVE_RECURSE
  "CMakeFiles/test_ctc.dir/test_ctc.cpp.o"
  "CMakeFiles/test_ctc.dir/test_ctc.cpp.o.d"
  "test_ctc"
  "test_ctc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ctc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
