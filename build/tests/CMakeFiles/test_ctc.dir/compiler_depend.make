# Empty compiler generated dependencies file for test_ctc.
# This may be replaced when dependencies are built.
