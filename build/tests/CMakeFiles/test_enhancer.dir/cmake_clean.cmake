file(REMOVE_RECURSE
  "CMakeFiles/test_enhancer.dir/test_enhancer.cpp.o"
  "CMakeFiles/test_enhancer.dir/test_enhancer.cpp.o.d"
  "test_enhancer"
  "test_enhancer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_enhancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
