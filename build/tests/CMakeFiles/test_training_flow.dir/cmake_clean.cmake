file(REMOVE_RECURSE
  "CMakeFiles/test_training_flow.dir/test_training_flow.cpp.o"
  "CMakeFiles/test_training_flow.dir/test_training_flow.cpp.o.d"
  "test_training_flow"
  "test_training_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_training_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
