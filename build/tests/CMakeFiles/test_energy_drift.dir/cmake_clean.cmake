file(REMOVE_RECURSE
  "CMakeFiles/test_energy_drift.dir/test_energy_drift.cpp.o"
  "CMakeFiles/test_energy_drift.dir/test_energy_drift.cpp.o.d"
  "test_energy_drift"
  "test_energy_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_energy_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
