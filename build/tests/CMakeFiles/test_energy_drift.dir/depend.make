# Empty dependencies file for test_energy_drift.
# This may be replaced when dependencies are built.
