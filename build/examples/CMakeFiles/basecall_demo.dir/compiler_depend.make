# Empty compiler generated dependencies file for basecall_demo.
# This may be replaced when dependencies are built.
