file(REMOVE_RECURSE
  "CMakeFiles/basecall_demo.dir/basecall_demo.cpp.o"
  "CMakeFiles/basecall_demo.dir/basecall_demo.cpp.o.d"
  "basecall_demo"
  "basecall_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/basecall_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
