file(REMOVE_RECURSE
  "CMakeFiles/mitigation_codesign.dir/mitigation_codesign.cpp.o"
  "CMakeFiles/mitigation_codesign.dir/mitigation_codesign.cpp.o.d"
  "mitigation_codesign"
  "mitigation_codesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitigation_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
