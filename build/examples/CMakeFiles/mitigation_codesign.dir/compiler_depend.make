# Empty compiler generated dependencies file for mitigation_codesign.
# This may be replaced when dependencies are built.
